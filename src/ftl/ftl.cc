#include "ftl.hh"

#include <algorithm>

#include "fault/fault_engine.hh"
#include "obs/audit/auditor.hh"

namespace babol::ftl {

using core::FlashOpKind;
using core::FlashRequest;
using core::OpResult;

/**
 * Transient state of an in-progress mount scan. Each chip scans its
 * blocks independently (one outstanding OOB_READ per chip, so the scan
 * parallelises across channels exactly like host traffic); the
 * per-page results are merged only in finishMount(), which makes the
 * rebuilt state independent of completion order — and therefore
 * byte-identical at any shard-thread count.
 */
struct PageFtl::MountScan
{
    Callback cb;
    std::vector<std::uint32_t> block; //!< per-chip block cursor
    std::vector<std::uint32_t> page;  //!< per-chip page cursor
    std::uint32_t chipsActive = 0;

    std::vector<std::uint64_t> bestSeq; //!< per LPN; 0 = never seen
    std::vector<std::uint64_t> bestPpa;
    /** seq of each decoded record, addressed [chip][block][page]. */
    std::vector<std::vector<std::vector<std::uint64_t>>> pageSeq;
    /** Grown defects recovered from OOB journal entries. */
    std::vector<std::vector<std::uint8_t>> defect;
    /** Max erase count seen in erase-journal entries, [chip][block]. */
    std::vector<std::vector<std::uint32_t>> eraseJ;
    std::uint64_t maxSeq = 0;
};

PageFtl::~PageFtl() = default;

PageFtl::PageFtl(EventQueue &eq, const std::string &name,
                 core::FlashBackend &backend, FtlConfig cfg)
    : SimObject(eq, name),
      backend_(backend),
      cfg_(cfg),
      pageBytes_(backend.backendGeometry().pageDataBytes),
      pagesPerBlock_(backend.backendGeometry().pagesPerBlock),
      oobBytes_(backend.backendGeometry().pageOobBytes),
      metrics_(obs::metrics(), name)
{
    obsTrack_ = obs::interner().intern(name);
    lblRead_ = obs::interner().intern("ftl.read");
    lblWrite_ = obs::interner().intern("ftl.write");
    lblMount_ = obs::interner().intern("ftl.mount");
    metrics_.value("host_reads", [this] { return hostReads_; });
    metrics_.value("host_writes", [this] { return hostWrites_; });
    metrics_.value("gc_runs", [this] { return gcRuns_; });
    metrics_.value("gc_page_moves", [this] { return gcPageMoves_; });
    metrics_.value("wl_runs", [this] { return wlRuns_; });
    metrics_.value("wl_page_moves", [this] { return wlPageMoves_; });
    metrics_.value("erases", [this] { return erases_; });
    metrics_.value("blocks_retired", [this] { return retired_; });
    metrics_.value("mount_pages_scanned",
                   [this] { return mountPagesScanned_; });
    metrics_.value("mount_torn_pages", [this] { return mountTornPages_; });
    metrics_.value("wb_hits", [this] { return wbHits_; });
    metrics_.value("wb_flushes", [this] { return wbFlushes_; });
    metrics_.value("read_failures", [this] { return readFailures_; });
    metrics_.value("refresh_moves", [this] { return refreshes_; });
    // The reliability-campaign gate: a read acked with uncorrectable
    // data that nothing could rebuild.
    metrics_.value("reliability.data-loss", [this] { return dataLoss_; });

    const std::uint32_t chips = backend_.backendChipCount();
    babol_assert(cfg_.blocksPerChip <=
                     backend_.backendGeometry().blocksPerLun(),
                 "FTL wants %u blocks/chip but the package has %u",
                 cfg_.blocksPerChip,
                 backend_.backendGeometry().blocksPerLun());
    babol_assert(oobBytes_ >= kOobCopies * kOobRecordBytes,
                 "OOB tail too small for the FTL's metadata record");

    auto usable = static_cast<std::uint32_t>(
        cfg_.blocksPerChip * (1.0 - cfg_.overprovision));
    babol_assert(usable >= 1, "over-provisioning leaves no usable blocks");
    logicalPages_ = static_cast<std::uint64_t>(chips) * usable *
                    pagesPerBlock_;
    map_.assign(logicalPages_, kUnmapped);
    mapSeq_.assign(logicalPages_, 0);

    chips_.resize(chips);
    for (auto &chip : chips_) {
        chip.blocks.resize(cfg_.blocksPerChip);
        for (std::uint32_t b = 0; b < cfg_.blocksPerChip; ++b) {
            chip.blocks[b].pageLpn.assign(pagesPerBlock_, kUnmapped);
            chip.freeBlocks.push_back(b);
        }
    }

    // DRAM layout, top down: one move-staging page per chip (GC, WL and
    // the mount scan each stage through their chip's page so concurrent
    // background moves cannot clobber each other), then the write
    // buffer, then the reliability staging slots (refresh moves, patrol
    // reads, RAIN parity/rebuild). Everything below is the host's.
    const std::uint64_t reserve =
        static_cast<std::uint64_t>(pageBytes_) *
        (chips + cfg_.writeBufferPages + cfg_.reliabilityScratchPages);
    babol_assert(backend_.backendDram().size() >= reserve,
                 "DRAM too small for the FTL staging regions");
    gcScratchAddr_ = backend_.backendDram().size() -
                     static_cast<std::uint64_t>(pageBytes_) * chips;
    wbBase_ = gcScratchAddr_ -
              static_cast<std::uint64_t>(pageBytes_) * cfg_.writeBufferPages;
    wbSlots_.resize(cfg_.writeBufferPages);
    reliabilityScratchBase_ =
        wbBase_ -
        static_cast<std::uint64_t>(pageBytes_) * cfg_.reliabilityScratchPages;
}

std::uint64_t
PageFtl::packPpa(const Ppa &p)
{
    return (static_cast<std::uint64_t>(p.chip) << 40) |
           (static_cast<std::uint64_t>(p.block) << 20) | p.page;
}

Ppa
PageFtl::unpackPpa(std::uint64_t packed)
{
    Ppa p;
    p.chip = static_cast<std::uint32_t>(packed >> 40);
    p.block = static_cast<std::uint32_t>((packed >> 20) & 0xFFFFF);
    p.page = static_cast<std::uint32_t>(packed & 0xFFFFF);
    return p;
}

bool
PageFtl::isMapped(std::uint64_t lpn) const
{
    if (lpn >= map_.size())
        return false;
    if (map_[lpn] != kUnmapped)
        return true;
    for (const BufferSlot &s : wbSlots_)
        if (s.lpn == lpn)
            return true;
    return false;
}

std::vector<GrownDefect>
PageFtl::exportGrownDefects() const
{
    std::vector<GrownDefect> table;
    for (std::uint32_t c = 0; c < chips_.size(); ++c) {
        for (std::uint32_t b = 0; b < chips_[c].blocks.size(); ++b) {
            if (chips_[c].blocks[b].bad)
                table.push_back({c, b});
        }
    }
    return table;
}

std::uint32_t
PageFtl::maxEraseCount(std::uint32_t chip) const
{
    std::uint32_t most = 0;
    for (const BlockInfo &bi : chips_[chip].blocks)
        most = std::max(most, bi.eraseCount);
    return most;
}

std::uint32_t
PageFtl::minFreeEraseCount(std::uint32_t chip) const
{
    std::uint32_t least = ~0u;
    for (std::uint32_t b : chips_[chip].freeBlocks)
        least = std::min(least, chips_[chip].blocks[b].eraseCount);
    return least;
}

std::uint32_t
PageFtl::wearSpread(std::uint32_t chip) const
{
    std::uint32_t most = 0;
    std::uint32_t least = ~0u;
    for (const BlockInfo &bi : chips_[chip].blocks) {
        if (bi.bad)
            continue;
        most = std::max(most, bi.eraseCount);
        least = std::min(least, bi.eraseCount);
    }
    return least == ~0u ? 0 : most - least;
}

// ---------------------------------------------------------------------
// Mount: rebuild everything from the OOB records.
// ---------------------------------------------------------------------

void
PageFtl::mount(Callback cb)
{
    babol_assert(!mountScan_, "mount already in progress");
    const auto chips = static_cast<std::uint32_t>(chips_.size());

    // Reset to pristine: whatever state this object accumulated is
    // discarded — flash is the only source of truth.
    std::fill(map_.begin(), map_.end(), kUnmapped);
    std::fill(mapSeq_.begin(), mapSeq_.end(), 0);
    for (auto &chip : chips_) {
        chip = ChipState{};
        chip.blocks.resize(cfg_.blocksPerChip);
        for (std::uint32_t b = 0; b < cfg_.blocksPerChip; ++b)
            chip.blocks[b].pageLpn.assign(pagesPerBlock_, kUnmapped);
    }

    mountScan_ = std::make_unique<MountScan>();
    MountScan &ms = *mountScan_;
    ms.cb = std::move(cb);
    ms.block.assign(chips, 0);
    ms.page.assign(chips, 0);
    ms.chipsActive = chips;
    ms.bestSeq.assign(logicalPages_, 0);
    ms.bestPpa.assign(logicalPages_, 0);
    ms.pageSeq.assign(
        chips, std::vector<std::vector<std::uint64_t>>(
                   cfg_.blocksPerChip,
                   std::vector<std::uint64_t>(pagesPerBlock_, 0)));
    ms.defect.assign(chips,
                     std::vector<std::uint8_t>(cfg_.blocksPerChip, 0));
    ms.eraseJ.assign(chips,
                     std::vector<std::uint32_t>(cfg_.blocksPerChip, 0));

    for (std::uint32_t c = 0; c < chips; ++c)
        mountScanNext(c);
}

void
PageFtl::mountScanNext(std::uint32_t chip)
{
    MountScan &ms = *mountScan_;
    if (ms.block[chip] >= cfg_.blocksPerChip) {
        if (--ms.chipsActive == 0)
            finishMount();
        return;
    }
    const std::uint32_t b = ms.block[chip];
    const std::uint32_t p = ms.page[chip];
    const std::uint64_t scratch =
        gcScratchAddr_ + static_cast<std::uint64_t>(chip) * pageBytes_;

    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblMount_, curTick(), obs::currentCtx(), chip);

    FlashRequest req;
    req.kind = FlashOpKind::OobRead;
    req.chip = chip;
    req.row = {0, b, p};
    req.dramAddr = scratch;
    req.ctx.span = span;
    req.onComplete = [this, chip, b, p, scratch, span](OpResult r) {
        obs::trace().endSpan(span, r.doneTick);
        ++mountPagesScanned_;
        MountScan &ms = *mountScan_;

        std::vector<std::uint8_t> tail(oobBytes_);
        backend_.backendDram().read(scratch, tail, curTick());

        if (oobErased(tail)) {
            // Unprogrammed page: the block's write frontier. Nothing
            // past it can be programmed (NOP=1, in-order), so move on.
            ++ms.block[chip];
            ms.page[chip] = 0;
        } else {
            BlockInfo &bi = chips_[chip].blocks[b];
            bi.written = p + 1;
            if (auto rec = decodeOob(tail)) {
                ms.maxSeq = std::max(ms.maxSeq, rec->seq);
                ms.pageSeq[chip][b][p] = rec->seq;
                // RAIN parity pages never enter the L2P map: their lpn
                // field is a stripe id, not a logical address. The page
                // stays dead weight until its block is reclaimed (the
                // stripe map itself is volatile by design).
                if (rec->state != OobState::RainParity &&
                    rec->lpn < logicalPages_) {
                    bi.pageLpn[p] = rec->lpn;
                    // Highest seq wins. Equal seqs only happen when a
                    // GC/WL move duplicated a copy and the crash landed
                    // before the source was erased — the bytes are
                    // identical, so any deterministic tie-break works.
                    const std::uint64_t ppa = packPpa({chip, b, p});
                    if (rec->seq > ms.bestSeq[rec->lpn] ||
                        (rec->seq == ms.bestSeq[rec->lpn] &&
                         ms.bestSeq[rec->lpn] != 0 &&
                         ppa > ms.bestPpa[rec->lpn])) {
                        ms.bestSeq[rec->lpn] = rec->seq;
                        ms.bestPpa[rec->lpn] = ppa;
                    }
                }
                bi.eraseCount = std::max(bi.eraseCount, rec->eraseCount);
                if (rec->defectEntry != OobRecord::kNoDefect &&
                    rec->defectEntry < cfg_.blocksPerChip) {
                    ms.defect[chip][rec->defectEntry] = 1;
                }
                if (rec->eraseEntry != OobRecord::kNoErase &&
                    rec->eraseEntry < cfg_.blocksPerChip) {
                    ms.eraseJ[chip][rec->eraseEntry] =
                        std::max(ms.eraseJ[chip][rec->eraseEntry],
                                 rec->eraseEntryCount);
                }
            } else {
                // Consumed but no copy of the record survives: a torn
                // program. The page is dead; the LPN (whatever it was)
                // keeps resolving to its previous copy.
                ++mountTornPages_;
            }
            if (p + 1 < pagesPerBlock_) {
                ++ms.page[chip];
            } else {
                ++ms.block[chip];
                ms.page[chip] = 0;
            }
        }
        mountScanNext(chip);
    };
    backend_.submit(std::move(req));
}

void
PageFtl::finishMount()
{
    MountScan &ms = *mountScan_;

    for (std::uint32_t c = 0; c < chips_.size(); ++c) {
        ChipState &cs = chips_[c];
        for (std::uint32_t b = 0; b < cfg_.blocksPerChip; ++b) {
            BlockInfo &bi = cs.blocks[b];
            bi.bad = ms.defect[c][b] != 0;
            // Erase-journal merge: a free block's own OOB went with its
            // erase, but the erase was journalled through subsequent
            // programs on the chip — its count no longer restarts at 0
            // (the ROADMAP-flagged gap). max() keeps the block's own
            // newer records authoritative when it was reprogrammed.
            bi.eraseCount = std::max(bi.eraseCount, ms.eraseJ[c][b]);
            if (bi.written == 0) {
                if (!bi.bad) {
                    bi.erased = true;
                    cs.freeBlocks.push_back(b);
                    // Re-journal the recovered count: it lives only in
                    // other blocks' OOB records, which GC will erase
                    // eventually — riding out with the next programs
                    // keeps it durable across repeated remounts.
                    if (bi.eraseCount > 0)
                        cs.eraseJournal.push_back({b, bi.eraseCount});
                }
                continue;
            }
            // Partially or fully written: close the block. Reopening a
            // half-written block after a crash is legal but a torn page
            // below the frontier would violate NOP ordering, so the
            // remainder is left dead for GC to reclaim.
            bi.erased = true;
            bi.written = pagesPerBlock_;
            bi.programmed = pagesPerBlock_;
            for (std::uint32_t p = 0; p < pagesPerBlock_; ++p) {
                const std::uint64_t lpn = bi.pageLpn[p];
                if (lpn == kUnmapped)
                    continue;
                if (ms.bestPpa[lpn] == packPpa({c, b, p}) &&
                    ms.bestSeq[lpn] == ms.pageSeq[c][b][p]) {
                    ++bi.valid;
                } else {
                    // A younger copy of this LPN exists elsewhere.
                    bi.pageLpn[p] = kUnmapped;
                }
            }
        }
    }

    for (std::uint64_t lpn = 0; lpn < logicalPages_; ++lpn) {
        if (ms.bestSeq[lpn] != 0) {
            map_[lpn] = ms.bestPpa[lpn];
            mapSeq_[lpn] = ms.bestSeq[lpn];
        }
    }
    seq_ = ms.maxSeq + 1;

    Callback cb = std::move(ms.cb);
    mountScan_.reset();
    cb(true);
}

// ---------------------------------------------------------------------
// Host I/O.
// ---------------------------------------------------------------------

void
PageFtl::readPage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb)
{
    babol_assert(lpn < logicalPages_, "LPN %llu out of range",
                 static_cast<unsigned long long>(lpn));

    // Track in-flight host I/O: the patrol scrubber yields while any is
    // outstanding.
    ++hostInflight_;
    cb = [this, inner = std::move(cb)](bool ok) {
        --hostInflight_;
        inner(ok);
    };

    // The write buffer holds the freshest copy of anything in it. A
    // slot being flushed may be shadowed by a younger non-flushing slot
    // for the same LPN — prefer the younger one.
    if (!wbSlots_.empty()) {
        std::int32_t hit = -1;
        for (std::uint32_t i = 0; i < wbSlots_.size(); ++i) {
            if (wbSlots_[i].lpn != lpn)
                continue;
            hit = static_cast<std::int32_t>(i);
            if (!wbSlots_[i].flushing)
                break;
        }
        if (hit >= 0) {
            ++hostReads_;
            ++wbHits_;
            std::vector<std::uint8_t> data(pageBytes_);
            dram::DramBuffer &dram = backend_.backendDram();
            dram.read(slotAddr(static_cast<std::uint32_t>(hit)), data,
                      curTick());
            dram.write(dram_addr, data, curTick());
            scheduleIn(dram.transferTime(pageBytes_),
                       [cb] { cb(true); }, "ftl buffered read");
            return;
        }
    }

    if (map_[lpn] == kUnmapped) {
        warn("%s: read of unmapped LPN %llu", name().c_str(),
             static_cast<unsigned long long>(lpn));
        eq_.scheduleIn(0, [cb] { cb(false); }, "ftl unmapped read");
        return;
    }
    ++hostReads_;
    Ppa ppa = unpackPpa(map_[lpn]);
    ++chips_[ppa.chip].blocks[ppa.block].hostReads;

    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblRead_, curTick(), obs::currentCtx(), lpn);

    FlashRequest req;
    req.kind = FlashOpKind::Read;
    req.chip = ppa.chip;
    req.row = {0, ppa.block, ppa.page};
    req.dramAddr = dram_addr;
    req.ctx.span = span;
    req.onComplete = [this, cb, span, lpn, ppa, dram_addr](OpResult r) {
        if (r.ok) {
            // Audit invariant: an acknowledged read is never served
            // straight off a dead die — a dead region fails every
            // codeword by construction, so a success here means the
            // decay model and the fault model disagree.
            auto &aud = obs::audit::auditor();
            if (aud.armed() && chipDead(ppa.chip)) {
                aud.report(obs::audit::Check::Reliability,
                           "rain.dead-die-serve", name(), r.doneTick,
                           strfmt("read of LPN %llu acked from dead "
                                  "chip %u",
                                  static_cast<unsigned long long>(lpn),
                                  ppa.chip));
            }
            obs::trace().endSpan(span, r.doneTick);
            cb(true);
            return;
        }
        // Uncorrectable after every retry level. See whether a die-wide
        // dead region is underneath, then hand the page to the RAIN
        // manager for an XOR rebuild from the surviving stripe members.
        ++readFailures_;
        noteChipFault(ppa.chip);
        if (onReadFailed) {
            onReadFailed(lpn, ppa, dram_addr, [this, cb, span](bool ok) {
                if (!ok)
                    ++dataLoss_;
                obs::trace().endSpan(span, curTick());
                cb(ok);
            });
            return;
        }
        ++dataLoss_;
        obs::trace().endSpan(span, r.doneTick);
        cb(false);
    };
    backend_.submit(std::move(req));
}

void
PageFtl::writePage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb)
{
    babol_assert(lpn < logicalPages_, "LPN %llu out of range",
                 static_cast<unsigned long long>(lpn));
    ++hostWrites_;
    ++hostInflight_;
    cb = [this, inner = std::move(cb)](bool ok) {
        --hostInflight_;
        inner(ok);
    };
    if (!wbSlots_.empty()) {
        bufferWrite(lpn, dram_addr, std::move(cb));
        return;
    }
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblWrite_, curTick(), obs::currentCtx(), lpn);
    allocateAndWrite(lpn, dram_addr, std::move(cb), 0, span);
}

// ---------------------------------------------------------------------
// Write buffer.
// ---------------------------------------------------------------------

std::uint64_t
PageFtl::slotAddr(std::uint32_t slot) const
{
    return wbBase_ + static_cast<std::uint64_t>(slot) * pageBytes_;
}

std::uint32_t
PageFtl::bufferedCount() const
{
    std::uint32_t n = 0;
    for (const BufferSlot &s : wbSlots_)
        if (s.lpn != kUnmapped && !s.flushing)
            ++n;
    return n;
}

void
PageFtl::bufferWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                     Callback cb)
{
    dram::DramBuffer &dram = backend_.backendDram();

    auto stage = [&](std::uint32_t slot) {
        std::vector<std::uint8_t> data(pageBytes_);
        dram.read(dram_addr, data, curTick());
        dram.write(slotAddr(slot), data, curTick());
    };

    // Coalesce: a younger write to a buffered LPN overwrites in place;
    // all stacked callbacks are acknowledged by the one program.
    for (std::uint32_t i = 0; i < wbSlots_.size(); ++i) {
        BufferSlot &s = wbSlots_[i];
        if (s.lpn == lpn && !s.flushing) {
            ++wbHits_;
            stage(i);
            s.cbs.push_back(std::move(cb));
            return;
        }
    }

    for (std::uint32_t i = 0; i < wbSlots_.size(); ++i) {
        BufferSlot &s = wbSlots_[i];
        if (s.lpn != kUnmapped || s.flushing)
            continue;
        stage(i);
        s.lpn = lpn;
        s.cbs.push_back(std::move(cb));
        if (bufferedCount() >= wbSlots_.size()) {
            flushBuffer();
        } else if (!wbTimerArmed_) {
            wbTimerArmed_ = true;
            scheduleIn(cfg_.writeBufferFlushUs * ticks::perUs, [this] {
                wbTimerArmed_ = false;
                flushBuffer();
            }, "ftl wb flush timer");
        }
        return;
    }

    // Every slot is pinned by an in-flight flush: write through. The
    // host sees the same contract (ack at program completion).
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblWrite_, curTick(), obs::currentCtx(), lpn);
    allocateAndWrite(lpn, dram_addr, std::move(cb), 0, span);
}

void
PageFtl::flushBuffer()
{
    for (std::uint32_t i = 0; i < wbSlots_.size(); ++i) {
        BufferSlot &s = wbSlots_[i];
        if (s.lpn == kUnmapped || s.flushing)
            continue;
        s.flushing = true;
        ++wbFlushes_;
        ++wbOutstanding_;
        const obs::SpanId span = obs::trace().beginSpan(
            obsTrack_, lblWrite_, curTick(), obs::currentCtx(), s.lpn);
        allocateAndWrite(s.lpn, slotAddr(i), [this, i](bool ok) {
            BufferSlot &slot = wbSlots_[i];
            std::vector<Callback> cbs = std::move(slot.cbs);
            slot.cbs.clear();
            slot.lpn = kUnmapped;
            slot.flushing = false;
            --wbOutstanding_;
            for (Callback &one : cbs)
                one(ok);
            if (wbFlushCb_) {
                if (bufferedCount() != 0) {
                    flushBuffer(); // writes coalesced in behind us
                } else if (wbOutstanding_ == 0) {
                    Callback done = std::move(wbFlushCb_);
                    wbFlushCb_ = nullptr;
                    done(true);
                }
            }
        }, 0, span);
    }
}

void
PageFtl::flush(Callback cb)
{
    flushBuffer();
    if (wbOutstanding_ == 0 && bufferedCount() == 0) {
        eq_.scheduleIn(0, [cb] { cb(true); }, "ftl flush idle");
        return;
    }
    babol_assert(!wbFlushCb_, "overlapping flush() calls");
    wbFlushCb_ = std::move(cb);
}

// ---------------------------------------------------------------------
// Allocation and programming.
// ---------------------------------------------------------------------

void
PageFtl::allocateAndWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                          Callback cb, std::uint32_t retries,
                          obs::SpanId span, OobState state,
                          std::uint64_t move_seq,
                          std::int32_t preferred_chip)
{
    PendingWrite pw;
    pw.lpn = lpn;
    pw.dramAddr = dram_addr;
    pw.cb = std::move(cb);
    pw.retries = retries;
    pw.state = state;
    // The seq is drawn HERE, at enqueue, not when the per-chip queue
    // pumps: two generations of one LPN can land on different chips,
    // and a busier chip pumping later must not hand the older
    // generation a younger seq (that inversion would let the stale
    // copy win both the live map and mount-time arbitration).
    pw.moveSeq = move_seq != 0 ? move_seq : seq_++;
    pw.span = span;
    enqueueWrite(std::move(pw), preferred_chip);
}

void
PageFtl::enqueueWrite(PendingWrite pw, std::int32_t preferred_chip)
{
    const auto nchips = static_cast<std::uint32_t>(chips_.size());
    std::uint32_t chip;
    if (preferred_chip >= 0 &&
        static_cast<std::uint32_t>(preferred_chip) < nchips &&
        !chipDead(static_cast<std::uint32_t>(preferred_chip))) {
        // Steered (scrub refresh to the coldest chip, RAIN parity off
        // the stripe's member chips): does not advance the host cursor.
        chip = static_cast<std::uint32_t>(preferred_chip);
    } else {
        chip = writeCursor_ % nchips;
        for (std::uint32_t i = 0; i < nchips && chipDead(chip); ++i)
            chip = (chip + 1) % nchips;
        writeCursor_ = (chip + 1) % nchips;
    }
    chips_[chip].writeQueue.push_back(std::move(pw));
    pumpWrites(chip);
}

/** Could a GC pass reclaim space on @p chip right now — is one already
 *  running (or an erase landing), or does a closed block with dead
 *  pages exist? Decides whether the last free block is worth holding
 *  back as the GC reserve. */
bool
PageFtl::gcReclaimable(std::uint32_t chip) const
{
    const ChipState &cs = chips_[chip];
    if (cs.gcInProgress || cs.wlInProgress || cs.erasePending)
        return true;
    for (std::uint32_t b = 0; b < cs.blocks.size(); ++b) {
        if (static_cast<std::int32_t>(b) == cs.activeBlock)
            continue;
        const BlockInfo &bi = cs.blocks[b];
        if (!bi.bad && bi.erased && bi.programmed >= pagesPerBlock_ &&
            bi.valid < pagesPerBlock_) {
            return true;
        }
    }
    return false;
}

bool
PageFtl::ensureActiveBlock(std::uint32_t chip, bool for_move)
{
    ChipState &cs = chips_[chip];
    if (cs.activeBlock >= 0 &&
        cs.blocks[cs.activeBlock].written < pagesPerBlock_) {
        // An active block carved from the reserve serves moves only:
        // host writes filling it would strand the migration's
        // remaining pages.
        return for_move || !cs.activeReserved;
    }
    if (cs.freeBlocks.empty())
        return false;
    // The GC reserve: host writes never take the last free block while
    // garbage collection could still turn it back into two — otherwise
    // a deep host queue eats the block GC needs for its moves and the
    // chip deadlocks with every page programmed.
    if (!for_move && cs.freeBlocks.size() == 1 && gcReclaimable(chip))
        return false;

    // Dynamic wear levelling: take the coldest free block.
    auto best = cs.freeBlocks.begin();
    for (auto it = cs.freeBlocks.begin(); it != cs.freeBlocks.end(); ++it) {
        if (cs.blocks[*it].eraseCount < cs.blocks[*best].eraseCount)
            best = it;
    }
    cs.activeBlock = static_cast<std::int32_t>(*best);
    cs.freeBlocks.erase(best);
    cs.activeReserved = for_move && cs.freeBlocks.empty() &&
                        (cs.gcInProgress || cs.wlInProgress);
    return true;
}

void
PageFtl::retireBlock(std::uint32_t chip, std::uint32_t block)
{
    ChipState &cs = chips_[chip];
    BlockInfo &bi = cs.blocks[block];
    if (bi.bad)
        return; // a second in-flight failure already retired it
    warn("%s: retiring chip %u block %u after %u erases", name().c_str(),
         chip, block, bi.eraseCount);
    bi.bad = true;
    bi.erased = false;
    ++retired_;
    // Journal the retirement: the entry rides out to flash in the OOB
    // record of this chip's next program, making it mount-recoverable.
    cs.defectJournal.push_back(block);
    backend_.backendFaults().noteRemap(name(), chip, block, curTick());
    if (cs.activeBlock == static_cast<std::int32_t>(block))
        cs.activeBlock = -1;
    auto it = std::find(cs.freeBlocks.begin(), cs.freeBlocks.end(), block);
    if (it != cs.freeBlocks.end())
        cs.freeBlocks.erase(it);
}

void
PageFtl::startEraseBeforeUse(std::uint32_t chip, std::uint32_t block)
{
    ChipState &cs = chips_[chip];
    if (cs.erasePending)
        return;
    cs.erasePending = true;
    ++erases_;

    auto submit = [this, chip, block] {
        FlashRequest req;
        req.kind = FlashOpKind::Erase;
        req.chip = chip;
        req.row = {0, block, 0};
        req.onComplete = [this, chip, block](OpResult r) {
            ChipState &state = chips_[chip];
            state.erasePending = false;
            BlockInfo &bi = state.blocks[block];
            if (!r.ok) {
                // Worn out: take it out of service; queued writes
                // re-route through the next pumpWrites pass.
                noteChipFault(chip);
                retireBlock(chip, block);
            } else {
                bi.erased = true;
                ++bi.eraseCount;
                bi.written = 0;
                bi.programmed = 0;
                bi.valid = 0;
                bi.hostReads = 0;
                std::fill(bi.pageLpn.begin(), bi.pageLpn.end(),
                          kUnmapped);
                pushEraseJournal(chip, block);
            }
            pumpWrites(chip);
            maybeStartWearLevel(chip);
        };
        backend_.submit(std::move(req));
    };
    // RAIN release protocol: stripes with a unit on this block lose it
    // to the erase — the manager refreshes their live members first.
    if (beforeErase)
        beforeErase(chip, block, std::move(submit));
    else
        submit();
}

/** Journal a completed erase (block + post-erase count) for the chip's
 *  next OOB records, replacing any stale entry for the same block. */
void
PageFtl::pushEraseJournal(std::uint32_t chip, std::uint32_t block)
{
    ChipState &cs = chips_[chip];
    const std::uint32_t count = cs.blocks[block].eraseCount;
    for (auto &e : cs.eraseJournal) {
        if (e.first == block) {
            e.second = count;
            return;
        }
    }
    cs.eraseJournal.push_back({block, count});
}

void
PageFtl::pumpWrites(std::uint32_t chip)
{
    if (chipDead(chip))
        return; // markChipDead already rerouted this queue
    ChipState &cs = chips_[chip];
    while (!cs.writeQueue.empty()) {
        // Host writes honour the GC reserve; GC/WL moves may take the
        // last free block — their erase is what turns it back into two.
        std::size_t pick = 0;
        if (!ensureActiveBlock(chip, cs.writeQueue.front().state !=
                                         OobState::HostWrite)) {
            // The head can't go. A move deeper in the queue still can
            // when only the reserve is left: a head-of-line host write
            // must not starve the very GC it is waiting on.
            pick = cs.writeQueue.size();
            for (std::size_t i = 1; i < cs.writeQueue.size(); ++i) {
                if (cs.writeQueue[i].state != OobState::HostWrite) {
                    pick = i;
                    break;
                }
            }
            if (pick < cs.writeQueue.size() &&
                !ensureActiveBlock(chip, true)) {
                pick = cs.writeQueue.size();
            }
            if (pick == cs.writeQueue.size()) {
                maybeStartGc(chip);
                // A migration whose move is parked right here in this
                // queue has nothing in flight — no completion is coming
                // to re-pump it, and space only ever appears through
                // the erase that move is blocking.
                bool move_waiting = false;
                for (const PendingWrite &w : cs.writeQueue) {
                    if (w.state != OobState::HostWrite) {
                        move_waiting = true;
                        break;
                    }
                }
                if (cs.erasePending ||
                    (!move_waiting &&
                     (cs.gcInProgress || cs.wlInProgress))) {
                    return; // a completion will re-pump
                }
                if (!move_waiting) {
                    fatal("%s: chip %u out of free blocks (GC could "
                          "not keep up — raise over-provisioning)",
                          name().c_str(), chip);
                }
                // End of life: every page on the chip is programmed and
                // the migration has nowhere to relocate into. Fail the
                // queued host writes rather than hanging them forever.
                // Parked moves stay: failing one would let the victim
                // be erased with valid data still aboard.
                warn("%s: chip %u out of relocatable space (end of "
                     "life); failing queued host writes",
                     name().c_str(), chip);
                for (std::size_t i = 0; i < cs.writeQueue.size();) {
                    if (cs.writeQueue[i].state != OobState::HostWrite) {
                        ++i;
                        continue;
                    }
                    PendingWrite dead = std::move(cs.writeQueue[i]);
                    cs.writeQueue.erase(
                        cs.writeQueue.begin() +
                        static_cast<std::ptrdiff_t>(i));
                    obs::trace().endSpan(dead.span, curTick());
                    dead.cb(false);
                }
                return;
            }
        }
        auto block = static_cast<std::uint32_t>(cs.activeBlock);
        BlockInfo &bi = cs.blocks[block];
        if (!bi.erased) {
            startEraseBeforeUse(chip, block);
            return; // resume when the erase lands
        }

        PendingWrite write = std::move(cs.writeQueue[pick]);
        cs.writeQueue.erase(cs.writeQueue.begin() +
                            static_cast<std::ptrdiff_t>(pick));

        std::uint32_t page = bi.written++;
        if (write.state != OobState::RainParity) {
            bi.pageLpn[page] = write.lpn;
            ++bi.valid;
        }
        // Parity pages stay out of the reverse map and the valid count:
        // they are dead weight GC reclaims with the block, and their
        // lpn field is a stripe id, not a logical address.

        // The OOB record travels in the same array commit as the data:
        // a power cut either lands both or tears both.
        OobRecord rec;
        rec.lpn = write.lpn;
        rec.seq = write.moveSeq;
        rec.eraseCount = bi.eraseCount;
        rec.state = write.state;
        if (!cs.defectJournal.empty()) {
            rec.defectEntry = cs.defectJournal.front();
            cs.defectJournal.pop_front();
        }
        if (!cs.eraseJournal.empty()) {
            rec.eraseEntry = cs.eraseJournal.front().first;
            rec.eraseEntryCount =
                std::min(cs.eraseJournal.front().second, 0xFFFEu);
            cs.eraseJournal.pop_front();
        }
        const std::uint64_t wseq = rec.seq;
        const std::uint32_t journalled = rec.defectEntry;
        const std::uint32_t ejBlock = rec.eraseEntry;
        const std::uint32_t ejCount = rec.eraseEntryCount;

        FlashRequest req;
        req.kind = FlashOpKind::Program;
        req.chip = chip;
        req.row = {0, block, page};
        req.dramAddr = write.dramAddr;
        req.oob = encodeOob(rec, oobBytes_);
        req.ctx.span = write.span;
        req.onComplete = [this, chip, block, page, wseq, journalled,
                          ejBlock, ejCount,
                          write = std::move(write)](OpResult r) mutable {
            BlockInfo &info = chips_[chip].blocks[block];
            ++info.programmed;
            if (write.state == OobState::RainParity) {
                // Parity bypasses the map entirely: report where it
                // landed (or reroute on a program failure, like any
                // other write).
                if (r.ok) {
                    if (write.parityCb)
                        write.parityCb(true, {chip, block, page});
                } else {
                    if (journalled != OobRecord::kNoDefect)
                        chips_[chip].defectJournal.push_front(journalled);
                    if (ejBlock != OobRecord::kNoErase)
                        chips_[chip].eraseJournal.push_front(
                            {ejBlock, ejCount});
                    noteChipFault(chip);
                    retireBlock(chip, block);
                    if (write.retries + 1 > cfg_.maxWriteRetries) {
                        if (write.parityCb)
                            write.parityCb(false, {chip, block, page});
                    } else {
                        ++write.retries;
                        enqueueWrite(std::move(write), -1);
                    }
                }
                maybeStartGc(chip);
                return;
            }
            if (r.ok) {
                // '>=': a GC/WL move reuses the seq of the copy it
                // relocates, so equality means "same generation, new
                // home" — install. Anything strictly older lost to a
                // younger write that completed first.
                if (wseq >= mapSeq_[write.lpn]) {
                    invalidate(write.lpn);
                    map_[write.lpn] = packPpa({chip, block, page});
                    mapSeq_[write.lpn] = wseq;
                    // The committed page joins the RAIN manager's open
                    // stripe; its bytes are still intact in DRAM (the
                    // source buffer is pinned until this ack).
                    if (onProgramCommitted) {
                        onProgramCommitted({chip, block, page}, write.lpn,
                                           write.dramAddr, write.state);
                    }
                } else {
                    // A younger write to the same LPN completed first
                    // (cross-chip reorder): this copy is durable but
                    // already stale — exactly what the mount-time seq
                    // arbitration would conclude.
                    info.pageLpn[page] = kUnmapped;
                    --info.valid;
                }
                obs::trace().endSpan(write.span, r.doneTick);
                write.cb(true);
            } else {
                // Program failure: drop the reservation, retire the
                // block, and re-route the write elsewhere. A journal
                // entry that rode this OOB never landed — requeue it.
                info.pageLpn[page] = kUnmapped;
                --info.valid;
                if (journalled != OobRecord::kNoDefect)
                    chips_[chip].defectJournal.push_front(journalled);
                if (ejBlock != OobRecord::kNoErase)
                    chips_[chip].eraseJournal.push_front({ejBlock, ejCount});
                noteChipFault(chip);
                retireBlock(chip, block);
                if (write.retries + 1 > cfg_.maxWriteRetries) {
                    warn("%s: write of LPN %llu failed %u times; giving "
                         "up",
                         name().c_str(),
                         static_cast<unsigned long long>(write.lpn),
                         write.retries + 1);
                    obs::trace().endSpan(write.span, r.doneTick);
                    write.cb(false);
                } else {
                    // The retry keeps the original seq: it is the same
                    // generation, merely rerouted — drawing a fresh one
                    // would let a rerouted GC move outrank a host
                    // overwrite issued in between.
                    allocateAndWrite(write.lpn, write.dramAddr,
                                     std::move(write.cb),
                                     write.retries + 1, write.span,
                                     write.state, write.moveSeq);
                }
            }
            maybeStartGc(chip);
        };
        backend_.submit(std::move(req));
    }
}

void
PageFtl::invalidate(std::uint64_t lpn)
{
    if (map_[lpn] == kUnmapped)
        return;
    Ppa old = unpackPpa(map_[lpn]);
    BlockInfo &bi = chips_[old.chip].blocks[old.block];
    babol_assert(bi.pageLpn[old.page] == lpn, "reverse map corrupt");
    bi.pageLpn[old.page] = kUnmapped;
    --bi.valid;
    map_[lpn] = kUnmapped;
}

// ---------------------------------------------------------------------
// Background moves: garbage collection and static wear levelling.
// ---------------------------------------------------------------------

void
PageFtl::maybeStartGc(std::uint32_t chip)
{
    ChipState &cs = chips_[chip];
    if (chipDead(chip) || cs.gcInProgress || cs.wlInProgress ||
        cs.freeBlocks.size() >= cfg_.gcLowWater) {
        return;
    }

    // Greedy victim selection: the fully-programmed block with the
    // fewest valid pages (never the active block, never a bad one).
    std::int32_t victim = -1;
    std::uint32_t best_valid = ~0u;
    for (std::uint32_t b = 0; b < cs.blocks.size(); ++b) {
        if (static_cast<std::int32_t>(b) == cs.activeBlock)
            continue;
        const BlockInfo &bi = cs.blocks[b];
        if (bi.bad || !bi.erased || bi.programmed < pagesPerBlock_)
            continue;
        if (bi.valid < best_valid) {
            best_valid = bi.valid;
            victim = static_cast<std::int32_t>(b);
        }
    }
    // A victim with no invalid pages frees nothing — wait for real
    // invalidations instead of churning.
    if (victim < 0 || best_valid >= pagesPerBlock_)
        return;

    cs.gcInProgress = true;
    ++gcRuns_;
    moveNext(chip, static_cast<std::uint32_t>(victim), 0,
             OobState::GcMove);
}

void
PageFtl::maybeStartWearLevel(std::uint32_t chip)
{
    if (cfg_.wearSpreadThreshold == 0 || chipDead(chip))
        return;
    ChipState &cs = chips_[chip];
    // Never compete with GC: static WL is a background activity. It may
    // run right at the GC low-water mark though — on small chips the
    // steady-state pool never rises above it, and a WL migration
    // returns its victim to the pool just like a GC run does.
    if (cs.gcInProgress || cs.wlInProgress ||
        cs.freeBlocks.size() < cfg_.gcLowWater) {
        return;
    }
    if (wearSpread(chip) <= cfg_.wearSpreadThreshold)
        return;

    // Coldest closed block holding valid data: its content has sat
    // still while the rest of the chip cycled. Moving it out retires
    // the imbalance at its source.
    std::int32_t victim = -1;
    std::uint32_t coldest = ~0u;
    for (std::uint32_t b = 0; b < cs.blocks.size(); ++b) {
        if (static_cast<std::int32_t>(b) == cs.activeBlock)
            continue;
        const BlockInfo &bi = cs.blocks[b];
        if (bi.bad || !bi.erased || bi.programmed < pagesPerBlock_ ||
            bi.valid == 0) {
            continue;
        }
        if (bi.eraseCount < coldest) {
            coldest = bi.eraseCount;
            victim = static_cast<std::int32_t>(b);
        }
    }
    if (victim < 0 || coldest + cfg_.wearSpreadThreshold >=
                          maxEraseCount(chip)) {
        return;
    }

    cs.wlInProgress = true;
    ++wlRuns_;
    moveNext(chip, static_cast<std::uint32_t>(victim), 0,
             OobState::WlMove);
}

void
PageFtl::moveNext(std::uint32_t chip, std::uint32_t victim,
                  std::uint32_t page, OobState mode)
{
    ChipState &cs = chips_[chip];
    BlockInfo &bi = cs.blocks[victim];
    const std::uint64_t scratch =
        gcScratchAddr_ + static_cast<std::uint64_t>(chip) * pageBytes_;

    if (chipDead(chip)) {
        // The die died under the migration: nothing on it can be read,
        // programmed or erased any more. The on-demand / sweep rebuild
        // paths recover what the map still needs.
        if (mode == OobState::WlMove)
            cs.wlInProgress = false;
        else
            cs.gcInProgress = false;
        cs.activeReserved = false;
        return;
    }

    // Skip invalid pages.
    while (page < pagesPerBlock_ && bi.pageLpn[page] == kUnmapped)
        ++page;

    if (page >= pagesPerBlock_) {
        // All valid pages relocated: reclaim the block.
        ++erases_;
        auto submit = [this, chip, victim, mode] {
            FlashRequest req;
            req.kind = FlashOpKind::Erase;
            req.chip = chip;
            req.row = {0, victim, 0};
            req.onComplete = [this, chip, victim, mode](OpResult r) {
                ChipState &state = chips_[chip];
                BlockInfo &info = state.blocks[victim];
                if (mode == OobState::WlMove)
                    state.wlInProgress = false;
                else
                    state.gcInProgress = false;
                if (r.ok) {
                    info.erased = true;
                    ++info.eraseCount;
                    info.written = 0;
                    info.programmed = 0;
                    info.valid = 0;
                    info.hostReads = 0;
                    std::fill(info.pageLpn.begin(), info.pageLpn.end(),
                              kUnmapped);
                    state.freeBlocks.push_back(victim);
                    pushEraseJournal(chip, victim);
                    // The migration paid off: whatever room is left in
                    // a reserve-carved active block is the host's
                    // again.
                    state.activeReserved = false;
                } else {
                    noteChipFault(chip);
                    retireBlock(chip, victim);
                }
                maybeStartGc(chip);
                // A failed erase never returned the victim to the
                // pool. If a follow-up migration just started, keep
                // holding a reserve-carved active block for its moves
                // — releasing it here lets the host fill the last
                // pages on the chip and wedge it with no free page to
                // relocate anything into.
                if (!state.gcInProgress && !state.wlInProgress)
                    state.activeReserved = false;
                pumpWrites(chip);
                maybeStartWearLevel(chip);
            };
            backend_.submit(std::move(req));
        };
        if (beforeErase)
            beforeErase(chip, victim, std::move(submit));
        else
            submit();
        return;
    }

    // Relocate one page: read into the chip's staging page, rewrite at
    // the current write frontier, continue with the next page. The
    // rewrite carries the copy's original seq (see PendingWrite), so a
    // host overwrite racing the move always wins.
    std::uint64_t lpn = bi.pageLpn[page];
    std::uint64_t move_seq = mapSeq_[lpn];
    if (mode == OobState::WlMove)
        ++wlPageMoves_;
    else
        ++gcPageMoves_;
    FlashRequest req;
    req.kind = FlashOpKind::Read;
    req.chip = chip;
    req.row = {0, victim, page};
    req.dramAddr = scratch;
    req.onComplete = [this, chip, victim, page, lpn, scratch, mode,
                      move_seq](OpResult r) {
        if (chips_[chip].blocks[victim].pageLpn[page] != lpn) {
            // Invalidated by a host overwrite while the read was in
            // flight: nothing left to move.
            moveNext(chip, victim, page + 1, mode);
            return;
        }
        if (!r.ok) {
            noteChipFault(chip);
            ++readFailures_;
            auto giveUp = [this, chip, victim, page, lpn, mode] {
                warn("%s: %s read of block %u page %u failed; data lost",
                     name().c_str(),
                     mode == OobState::WlMove ? "WL" : "GC", victim,
                     page);
                ++dataLoss_;
                if (map_[lpn] == packPpa({chip, victim, page}))
                    invalidate(lpn);
                moveNext(chip, victim, page + 1, mode);
            };
            if (onReadFailed) {
                // XOR-rebuild the page into the move staging slot and
                // continue the migration with the recovered bytes.
                onReadFailed(
                    lpn, {chip, victim, page}, scratch,
                    [this, chip, victim, page, lpn, scratch, mode,
                     move_seq, giveUp](bool rebuilt) {
                        if (!rebuilt) {
                            giveUp();
                            return;
                        }
                        if (chips_[chip].blocks[victim].pageLpn[page] !=
                            lpn) {
                            moveNext(chip, victim, page + 1, mode);
                            return;
                        }
                        allocateAndWrite(
                            lpn, scratch,
                            [this, chip, victim, page, mode](bool) {
                                moveNext(chip, victim, page + 1, mode);
                            },
                            0, obs::kNoSpan, mode, move_seq);
                    });
                return;
            }
            giveUp();
            return;
        }
        allocateAndWrite(lpn, scratch, [this, chip, victim, page,
                                        mode](bool ok) {
            if (!ok)
                warn("%s: %s rewrite failed", name().c_str(),
                     mode == OobState::WlMove ? "WL" : "GC");
            moveNext(chip, victim, page + 1, mode);
        }, 0, obs::kNoSpan, mode, move_seq);
    };
    backend_.submit(std::move(req));
}

// ---------------------------------------------------------------------
// Reliability services (patrol scrubber / RAIN manager attach here).
// ---------------------------------------------------------------------

std::optional<std::uint64_t>
PageFtl::pageLpnAt(std::uint32_t chip, std::uint32_t block,
                   std::uint32_t page) const
{
    const std::uint64_t lpn = chips_[chip].blocks[block].pageLpn[page];
    if (lpn == kUnmapped)
        return std::nullopt;
    return lpn;
}

std::optional<Ppa>
PageFtl::mappedPpa(std::uint64_t lpn) const
{
    if (lpn >= map_.size() || map_[lpn] == kUnmapped)
        return std::nullopt;
    return unpackPpa(map_[lpn]);
}

std::uint64_t
PageFtl::reliabilityScratchAddr(std::uint32_t slot) const
{
    babol_assert(slot < cfg_.reliabilityScratchPages,
                 "reliability scratch slot %u out of range (%u reserved)",
                 slot, cfg_.reliabilityScratchPages);
    return reliabilityScratchBase_ +
           static_cast<std::uint64_t>(slot) * pageBytes_;
}

void
PageFtl::readPhysical(std::uint32_t chip, std::uint32_t block,
                      std::uint32_t page, std::uint64_t dram_addr,
                      std::function<void(const core::OpResult &)> cb)
{
    FlashRequest req;
    req.kind = FlashOpKind::Read;
    req.chip = chip;
    req.row = {0, block, page};
    req.dramAddr = dram_addr;
    req.onComplete = [cb = std::move(cb)](OpResult r) { cb(r); };
    backend_.submit(std::move(req));
}

void
PageFtl::refreshLpn(std::uint64_t lpn, Callback cb,
                    std::int32_t preferred_chip)
{
    babol_assert(cfg_.reliabilityScratchPages >= 1,
                 "refreshLpn needs a reliability scratch page");
    refreshQueue_.push_back({lpn, std::move(cb), preferred_chip});
    pumpRefresh();
}

void
PageFtl::pumpRefresh()
{
    if (refreshBusy_ || refreshQueue_.empty())
        return;
    RefreshJob job = std::move(refreshQueue_.front());
    refreshQueue_.pop_front();

    if (map_[job.lpn] == kUnmapped) {
        // Nothing mapped (lost or trimmed): vacuous success.
        eq_.scheduleIn(0, [this, cb = std::move(job.cb)] {
            cb(true);
            pumpRefresh();
        }, "ftl refresh unmapped");
        return;
    }
    refreshBusy_ = true;
    const Ppa at = unpackPpa(map_[job.lpn]);
    const std::uint64_t scratch = reliabilityScratchAddr(0);
    readPhysical(at.chip, at.block, at.page, scratch,
                 [this, job = std::move(job), at,
                  scratch](const OpResult &r) mutable {
        auto rewrite = [this](RefreshJob j, const Ppa &expected,
                              std::uint64_t src) {
            if (map_[j.lpn] != packPpa(expected)) {
                // A host overwrite landed while we were reading: the
                // fresh copy already lives elsewhere.
                refreshBusy_ = false;
                j.cb(true);
                pumpRefresh();
                return;
            }
            ++refreshes_;
            allocateAndWrite(j.lpn, src,
                             [this, cb = std::move(j.cb)](bool ok) {
                                 refreshBusy_ = false;
                                 cb(ok);
                                 pumpRefresh();
                             },
                             0, obs::kNoSpan, OobState::ScrubMove,
                             mapSeq_[j.lpn], j.preferredChip);
        };
        if (r.ok) {
            rewrite(std::move(job), at, scratch);
            return;
        }
        ++readFailures_;
        noteChipFault(at.chip);
        if (onReadFailed) {
            const std::uint64_t lpn = job.lpn;
            onReadFailed(lpn, at, scratch,
                         [this, job = std::move(job), at, scratch,
                          rewrite](bool rebuilt) mutable {
                             if (!rebuilt) {
                                 ++dataLoss_;
                                 refreshBusy_ = false;
                                 job.cb(false);
                                 pumpRefresh();
                                 return;
                             }
                             rewrite(std::move(job), at, scratch);
                         });
            return;
        }
        ++dataLoss_;
        refreshBusy_ = false;
        job.cb(false);
        pumpRefresh();
    });
}

void
PageFtl::rewritePage(std::uint64_t lpn, const Ppa &expected,
                     std::uint64_t dram_addr, Callback cb,
                     std::int32_t preferred_chip)
{
    if (map_[lpn] != packPpa(expected)) {
        // Overwritten mid-rebuild: the younger copy wins, nothing to do.
        eq_.scheduleIn(0, [cb = std::move(cb)] { cb(true); },
                       "ftl rewrite stale");
        return;
    }
    allocateAndWrite(lpn, dram_addr, std::move(cb), 0, obs::kNoSpan,
                     OobState::ScrubMove, mapSeq_[lpn], preferred_chip);
}

void
PageFtl::writeParity(std::uint64_t stripe_id, std::uint64_t dram_addr,
                     std::uint32_t avoid_chip_mask,
                     std::function<void(bool ok, Ppa at)> cb)
{
    PendingWrite pw;
    pw.lpn = stripe_id;
    pw.dramAddr = dram_addr;
    pw.cb = [](bool) {};
    pw.state = OobState::RainParity;
    pw.moveSeq = seq_++;
    pw.parityCb = std::move(cb);
    enqueueWrite(std::move(pw), coldestChip(avoid_chip_mask));
}

std::int32_t
PageFtl::coldestChip(std::uint32_t exclude_mask) const
{
    std::int32_t best = -1;
    std::uint64_t bestWear = ~std::uint64_t(0);
    for (std::uint32_t c = 0; c < chips_.size(); ++c) {
        if (chipDead(c) || (c < 32 && ((exclude_mask >> c) & 1)))
            continue;
        std::uint64_t wear = 0;
        for (const BlockInfo &bi : chips_[c].blocks)
            wear += bi.eraseCount;
        if (wear < bestWear) {
            bestWear = wear;
            best = static_cast<std::int32_t>(c);
        }
    }
    return best;
}

void
PageFtl::markChipDead(std::uint32_t chip)
{
    if (chip >= 64 || chipDead(chip))
        return;
    deadChipMask_ |= std::uint64_t(1) << chip;
    warn("%s: chip %u declared dead; rerouting %zu queued writes",
         name().c_str(), chip, chips_[chip].writeQueue.size());

    ChipState &cs = chips_[chip];
    cs.gcInProgress = false;
    cs.wlInProgress = false;
    cs.activeReserved = false;
    std::deque<PendingWrite> orphans = std::move(cs.writeQueue);
    cs.writeQueue.clear();
    for (PendingWrite &w : orphans)
        enqueueWrite(std::move(w), -1);
    if (onChipDead)
        onChipDead(chip);
}

void
PageFtl::noteChipFault(std::uint32_t chip)
{
    if (chipDead(chip))
        return;
    const std::string nm = backend_.backendChipName(chip);
    if (!nm.empty() && backend_.backendFaults().dieDead(nm))
        markChipDead(chip);
}

} // namespace babol::ftl
