#include "oob.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace babol::ftl {

std::uint32_t
oobCrc32(std::span<const std::uint8_t> bytes)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t b : bytes) {
        crc ^= b;
        for (int i = 0; i < 8; ++i)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

namespace {

void
put32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
put48(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 6; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint64_t
get48(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 5; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

constexpr std::uint8_t kMagic = 0xB6; // layout v2 (erase journal)

} // namespace

std::vector<std::uint8_t>
encodeOob(const OobRecord &rec, std::uint32_t oobBytes)
{
    babol_assert(oobBytes >= kOobCopies * kOobRecordBytes,
                 "OOB tail too small for %u record copies", kOobCopies);
    std::vector<std::uint8_t> out(oobBytes, 0xFF);

    babol_assert(rec.seq < (1ull << 48), "OOB seq field overflow");
    std::uint8_t copy[kOobRecordBytes];
    std::fill(std::begin(copy), std::end(copy), 0xFF);
    copy[0] = kMagic;
    copy[1] = static_cast<std::uint8_t>(rec.state);
    put64(&copy[2], rec.lpn);
    put48(&copy[10], rec.seq);
    put32(&copy[16], rec.eraseCount);
    put32(&copy[20], rec.defectEntry);
    put16(&copy[24], static_cast<std::uint16_t>(
                         std::min(rec.eraseEntry, OobRecord::kNoErase)));
    put16(&copy[26], static_cast<std::uint16_t>(
                         std::min(rec.eraseEntryCount, 0xFFFFu)));
    put32(&copy[28], oobCrc32({copy, 28}));

    for (std::uint32_t c = 0; c < kOobCopies; ++c)
        std::copy(std::begin(copy), std::end(copy),
                  out.begin() + c * kOobRecordBytes);
    return out;
}

std::optional<OobRecord>
decodeOob(std::span<const std::uint8_t> bytes)
{
    for (std::uint32_t c = 0; c < kOobCopies; ++c) {
        if ((c + 1) * kOobRecordBytes > bytes.size())
            break;
        const std::uint8_t *p = bytes.data() + c * kOobRecordBytes;
        if (p[0] != kMagic)
            continue;
        if (oobCrc32({p, 28}) != get32(&p[28]))
            continue;
        OobRecord rec;
        rec.state = static_cast<OobState>(p[1]);
        rec.lpn = get64(&p[2]);
        rec.seq = get48(&p[10]);
        rec.eraseCount = get32(&p[16]);
        rec.defectEntry = get32(&p[20]);
        rec.eraseEntry = get16(&p[24]);
        rec.eraseEntryCount = get16(&p[26]);
        return rec;
    }
    return std::nullopt;
}

bool
oobErased(std::span<const std::uint8_t> bytes)
{
    for (std::uint8_t b : bytes)
        if (b != 0xFF)
            return false;
    return true;
}

} // namespace babol::ftl
