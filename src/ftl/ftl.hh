/**
 * @file
 * A page-mapped Flash Translation Layer.
 *
 * The FTL is a substrate in this reproduction (the paper swaps only the
 * Storage Controller), so it is deliberately conventional:
 *
 *  - an LPN→PPN map with way-striped allocation (sequential LPNs land
 *    on successive chips, like the Cosmos+ firmware),
 *  - erase-before-use block management with per-chip write queues,
 *  - greedy garbage collection (min-valid victim),
 *  - dynamic wear levelling (allocation prefers the coldest free
 *    block) plus optional static wear levelling (cold valid data is
 *    migrated off low-erase-count blocks when the wear spread exceeds
 *    a threshold),
 *  - an optional DRAM write buffer that coalesces bursty writes and
 *    acknowledges them only once the flash program commits,
 *  - bad-block retirement: blocks whose erase or program fails are
 *    taken out of service and in-flight writes re-routed, and
 *  - crash recovery: every program carries an OOB record (see oob.hh)
 *    and mount() rebuilds the entire mapping state by scanning those
 *    records back through the real channel path — no side-channel
 *    tables survive a power cycle, because on a real device none do.
 *
 * It runs on any FlashBackend — a single channel controller or a
 * multi-channel Ssd.
 */

#ifndef BABOL_FTL_FTL_HH
#define BABOL_FTL_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/flash_backend.hh"
#include "ftl/oob.hh"
#include "obs/hub.hh"
#include "sim/sim_object.hh"

namespace babol::ftl {

/** One grown-defect entry: a block retired after a program or erase
 *  failure. The table is durable on flash — retirements are journalled
 *  through the OOB records of subsequent programs and rebuilt by
 *  mount(); this struct is export-only introspection. */
struct GrownDefect
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
};

struct FtlConfig
{
    /** Blocks per chip the FTL manages (a slice keeps tests fast). */
    std::uint32_t blocksPerChip = 64;

    /** Reserve this fraction of blocks as over-provisioning for GC. */
    double overprovision = 0.125;

    /** Start GC when a chip's free-block pool drops this low. */
    std::uint32_t gcLowWater = 2;

    /** Give up on a host write after this many bad-block reroutes. */
    std::uint32_t maxWriteRetries = 3;

    /**
     * DRAM write-buffer slots (0 = write-through, the historical
     * behaviour). Buffered writes coalesce by LPN and are acknowledged
     * only when their flash program commits — a power cut may lose
     * buffered-but-unacknowledged data, never acknowledged data.
     */
    std::uint32_t writeBufferPages = 0;

    /** Flush a non-empty write buffer after this long even if it never
     *  fills (µs of simulated time). */
    std::uint64_t writeBufferFlushUs = 200;

    /**
     * Static wear levelling: when a chip's erase-count spread
     * (max − min over live blocks) exceeds this, migrate the coldest
     * block's valid data so the block re-enters the free pool.
     * 0 disables static WL (dynamic WL still applies).
     */
    std::uint32_t wearSpreadThreshold = 0;
};

/** A physical page address. */
struct Ppa
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;
};

class PageFtl : public SimObject
{
  public:
    using Callback = std::function<void(bool ok)>;

    PageFtl(EventQueue &eq, const std::string &name,
            core::FlashBackend &backend, FtlConfig cfg = {});
    ~PageFtl(); // out of line: MountScan is incomplete here

    /** Logical pages this FTL exposes. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    std::uint32_t pageBytes() const { return pageBytes_; }

    /**
     * Rebuild the mapping state from the per-page OOB records: the L2P
     * map, valid bitmaps, erase counts, and the grown-defect table.
     * Every page is fetched with a real OOB_READ through the channel —
     * the scan costs simulated time and energy like any other I/O.
     * Call on a freshly constructed FTL before any host traffic; @p cb
     * fires when the scan completes.
     */
    void mount(Callback cb);

    /** Read one logical page into DRAM at @p dram_addr. */
    void readPage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** Write one logical page from DRAM at @p dram_addr. */
    void writePage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** Force the write buffer out to flash; @p cb fires once every
     *  previously buffered write has been acknowledged. */
    void flush(Callback cb);

    /** True when the LPN has ever been written. */
    bool isMapped(std::uint64_t lpn) const;

    /** The flash back end this FTL drives. */
    core::FlashBackend &backend() { return backend_; }

    // --- Stats / introspection ---
    std::uint64_t hostReads() const { return hostReads_; }
    std::uint64_t hostWrites() const { return hostWrites_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t gcPageMoves() const { return gcPageMoves_; }
    std::uint64_t wearLevelRuns() const { return wlRuns_; }
    std::uint64_t wearLevelPageMoves() const { return wlPageMoves_; }
    std::uint64_t erasesIssued() const { return erases_; }
    std::uint64_t blocksRetired() const { return retired_; }
    std::uint64_t mountPagesScanned() const { return mountPagesScanned_; }
    std::uint64_t mountTornPages() const { return mountTornPages_; }
    std::uint64_t writeBufferHits() const { return wbHits_; }
    std::uint64_t writeBufferFlushes() const { return wbFlushes_; }

    /** The current grown-defect table: every bad block, both recovered
     *  ones and those retired during this mount. */
    std::vector<GrownDefect> exportGrownDefects() const;

    /** Spread of per-block erase counts on a chip (wear levelling). */
    std::uint32_t maxEraseCount(std::uint32_t chip) const;
    std::uint32_t minFreeEraseCount(std::uint32_t chip) const;
    std::uint32_t wearSpread(std::uint32_t chip) const;

  private:
    static constexpr std::uint64_t kUnmapped = ~std::uint64_t(0);

    struct BlockInfo
    {
        std::vector<std::uint64_t> pageLpn; //!< lpn per page (reverse map)
        std::uint32_t written = 0;          //!< pages reserved for writes
        std::uint32_t programmed = 0;       //!< programs actually landed
        std::uint32_t valid = 0;            //!< still-mapped pages
        std::uint32_t eraseCount = 0;
        bool erased = false;
        bool bad = false;
    };

    struct PendingWrite
    {
        std::uint64_t lpn;
        std::uint64_t dramAddr;
        Callback cb;
        std::uint32_t retries = 0;
        OobState state = OobState::HostWrite;

        /** The write's sequence number, fixed at enqueue time so seq
         *  order equals host-issue order even when generations of one
         *  LPN queue on different chips. Host writes draw a fresh seq;
         *  GC/WL moves reuse the seq of the copy being relocated, so a
         *  concurrent host overwrite (which holds a younger seq) beats
         *  the move both in the live map and in mount-time arbitration
         *  — a move can never resurrect stale data. */
        std::uint64_t moveSeq = 0;

        /** FTL-write span; stays open across program retries. */
        obs::SpanId span = obs::kNoSpan;
    };

    struct ChipState
    {
        std::vector<BlockInfo> blocks;
        std::deque<std::uint32_t> freeBlocks;
        std::deque<PendingWrite> writeQueue;
        std::int32_t activeBlock = -1;
        bool erasePending = false;
        bool gcInProgress = false;
        bool wlInProgress = false;
        /** The active block was carved from the last free block for a
         *  GC/WL move: host writes keep out until the migration's
         *  erase replenishes the pool, or the moves themselves would
         *  run out of pages. */
        bool activeReserved = false;

        /** Blocks retired but not yet journalled to flash: each entry
         *  rides in the OOB record of the chip's next program. */
        std::deque<std::uint32_t> defectJournal;
    };

    /** One write-buffer slot (a page-sized DRAM staging region). */
    struct BufferSlot
    {
        std::uint64_t lpn = kUnmapped;
        bool flushing = false; //!< program in flight; slot pinned
        std::vector<Callback> cbs;
    };

    /** Transient per-mount scan state (freed when the scan finishes). */
    struct MountScan;

    void allocateAndWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                          Callback cb, std::uint32_t retries = 0,
                          obs::SpanId span = obs::kNoSpan,
                          OobState state = OobState::HostWrite,
                          std::uint64_t move_seq = 0);
    void pumpWrites(std::uint32_t chip);
    bool ensureActiveBlock(std::uint32_t chip, bool for_move = false);
    bool gcReclaimable(std::uint32_t chip) const;
    void startEraseBeforeUse(std::uint32_t chip, std::uint32_t block);
    void retireBlock(std::uint32_t chip, std::uint32_t block);
    void maybeStartGc(std::uint32_t chip);
    void maybeStartWearLevel(std::uint32_t chip);
    void moveNext(std::uint32_t chip, std::uint32_t victim,
                  std::uint32_t page, OobState mode);
    void invalidate(std::uint64_t lpn);

    // Write-buffer plumbing.
    std::uint64_t slotAddr(std::uint32_t slot) const;
    void bufferWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                     Callback cb);
    void flushBuffer();
    std::uint32_t bufferedCount() const;

    // Mount plumbing.
    void mountScanNext(std::uint32_t chip);
    void finishMount();

    core::FlashBackend &backend_;
    FtlConfig cfg_;
    std::uint32_t pageBytes_;
    std::uint32_t pagesPerBlock_;
    std::uint32_t oobBytes_;
    std::uint64_t logicalPages_;

    std::vector<std::uint64_t> map_; //!< lpn -> packed ppa or kUnmapped
    std::vector<std::uint64_t> mapSeq_; //!< seq that installed map_[lpn]
    std::vector<ChipState> chips_;
    std::uint32_t writeCursor_ = 0; //!< round-robin chip for striping

    /** Global program sequence number (ties broken by construction:
     *  every program gets a fresh one; mount resumes past the max). */
    std::uint64_t seq_ = 1;

    /** Scratch DRAM region for GC/WL page moves (top of the buffer). */
    std::uint64_t gcScratchAddr_;

    // Write buffer state.
    std::vector<BufferSlot> wbSlots_;
    std::uint64_t wbBase_ = 0; //!< DRAM address of slot 0
    bool wbTimerArmed_ = false;
    Callback wbFlushCb_; //!< pending flush() waiter
    std::uint32_t wbOutstanding_ = 0; //!< slots mid-program

    std::unique_ptr<MountScan> mountScan_;

    std::uint64_t hostReads_ = 0;
    std::uint64_t hostWrites_ = 0;
    std::uint64_t gcRuns_ = 0;
    std::uint64_t gcPageMoves_ = 0;
    std::uint64_t wlRuns_ = 0;
    std::uint64_t wlPageMoves_ = 0;
    std::uint64_t erases_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t mountPagesScanned_ = 0;
    std::uint64_t mountTornPages_ = 0;
    std::uint64_t wbHits_ = 0;
    std::uint64_t wbFlushes_ = 0;

    std::uint64_t packPpa(const Ppa &p) const;
    Ppa unpackPpa(std::uint64_t packed) const;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;
    std::uint32_t lblMount_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::ftl

#endif // BABOL_FTL_FTL_HH
