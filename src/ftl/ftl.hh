/**
 * @file
 * A page-mapped Flash Translation Layer.
 *
 * The FTL is a substrate in this reproduction (the paper swaps only the
 * Storage Controller), so it is deliberately conventional:
 *
 *  - an LPN→PPN map with way-striped allocation (sequential LPNs land
 *    on successive chips, like the Cosmos+ firmware),
 *  - erase-before-use block management with per-chip write queues,
 *  - greedy garbage collection (min-valid victim),
 *  - dynamic wear levelling (allocation prefers the coldest free
 *    block) plus optional static wear levelling (cold valid data is
 *    migrated off low-erase-count blocks when the wear spread exceeds
 *    a threshold),
 *  - an optional DRAM write buffer that coalesces bursty writes and
 *    acknowledges them only once the flash program commits,
 *  - bad-block retirement: blocks whose erase or program fails are
 *    taken out of service and in-flight writes re-routed, and
 *  - crash recovery: every program carries an OOB record (see oob.hh)
 *    and mount() rebuilds the entire mapping state by scanning those
 *    records back through the real channel path — no side-channel
 *    tables survive a power cycle, because on a real device none do.
 *
 * It runs on any FlashBackend — a single channel controller or a
 * multi-channel Ssd.
 */

#ifndef BABOL_FTL_FTL_HH
#define BABOL_FTL_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/flash_backend.hh"
#include "ftl/oob.hh"
#include "obs/hub.hh"
#include "sim/sim_object.hh"

namespace babol::ftl {

/** One grown-defect entry: a block retired after a program or erase
 *  failure. The table is durable on flash — retirements are journalled
 *  through the OOB records of subsequent programs and rebuilt by
 *  mount(); this struct is export-only introspection. */
struct GrownDefect
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
};

struct FtlConfig
{
    /** Blocks per chip the FTL manages (a slice keeps tests fast). */
    std::uint32_t blocksPerChip = 64;

    /** Reserve this fraction of blocks as over-provisioning for GC. */
    double overprovision = 0.125;

    /** Start GC when a chip's free-block pool drops this low. */
    std::uint32_t gcLowWater = 2;

    /** Give up on a host write after this many bad-block reroutes. */
    std::uint32_t maxWriteRetries = 3;

    /**
     * DRAM write-buffer slots (0 = write-through, the historical
     * behaviour). Buffered writes coalesce by LPN and are acknowledged
     * only when their flash program commits — a power cut may lose
     * buffered-but-unacknowledged data, never acknowledged data.
     */
    std::uint32_t writeBufferPages = 0;

    /** Flush a non-empty write buffer after this long even if it never
     *  fills (µs of simulated time). */
    std::uint64_t writeBufferFlushUs = 200;

    /**
     * Static wear levelling: when a chip's erase-count spread
     * (max − min over live blocks) exceeds this, migrate the coldest
     * block's valid data so the block re-enters the free pool.
     * 0 disables static WL (dynamic WL still applies).
     */
    std::uint32_t wearSpreadThreshold = 0;

    /**
     * DRAM staging pages reserved for the reliability subsystem
     * (patrol-scrub reads, refresh moves, RAIN parity accumulation and
     * rebuild). 0 = reliability services disabled (the historical
     * layout). Slot 0 is the FTL's own refresh staging page; the
     * src/reliability classes divide the rest.
     */
    std::uint32_t reliabilityScratchPages = 0;
};

/** A physical page address. */
struct Ppa
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;
};

class PageFtl : public SimObject
{
  public:
    using Callback = std::function<void(bool ok)>;

    PageFtl(EventQueue &eq, const std::string &name,
            core::FlashBackend &backend, FtlConfig cfg = {});
    ~PageFtl(); // out of line: MountScan is incomplete here

    /** Logical pages this FTL exposes. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    std::uint32_t pageBytes() const { return pageBytes_; }

    /**
     * Rebuild the mapping state from the per-page OOB records: the L2P
     * map, valid bitmaps, erase counts, and the grown-defect table.
     * Every page is fetched with a real OOB_READ through the channel —
     * the scan costs simulated time and energy like any other I/O.
     * Call on a freshly constructed FTL before any host traffic; @p cb
     * fires when the scan completes.
     */
    void mount(Callback cb);

    /** Read one logical page into DRAM at @p dram_addr. */
    void readPage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** Write one logical page from DRAM at @p dram_addr. */
    void writePage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** Force the write buffer out to flash; @p cb fires once every
     *  previously buffered write has been acknowledged. */
    void flush(Callback cb);

    /** True when the LPN has ever been written. */
    bool isMapped(std::uint64_t lpn) const;

    /** The flash back end this FTL drives. */
    core::FlashBackend &backend() { return backend_; }

    // --- Reliability services (patrol scrubber / RAIN manager) ---
    //
    // The media-decay subsystem in src/reliability attaches to the FTL
    // through these services and the hook points below; the FTL itself
    // stays free of any RAIN/scrub policy. All services require
    // FtlConfig::reliabilityScratchPages > 0.

    std::uint32_t chipCount() const
    {
        return static_cast<std::uint32_t>(chips_.size());
    }
    std::uint32_t blocksPerChip() const { return cfg_.blocksPerChip; }
    std::uint32_t pagesPerBlock() const { return pagesPerBlock_; }

    /** Host I/O in flight (reads, writes, pinned buffer flushes) — the
     *  scrubber's idle test. */
    bool hostBusy() const
    {
        return hostInflight_ != 0 || wbOutstanding_ != 0;
    }

    /** Host reads served from this block since its last erase (the
     *  FTL-level read-disturb counter the scrubber trips on). */
    std::uint64_t blockHostReads(std::uint32_t chip,
                                 std::uint32_t block) const
    {
        return chips_[chip].blocks[block].hostReads;
    }

    /** The LPN mapped at a physical page, or nullopt when the page is
     *  dead/unwritten (reverse-map lookup for the patrol cursor). */
    std::optional<std::uint64_t> pageLpnAt(std::uint32_t chip,
                                           std::uint32_t block,
                                           std::uint32_t page) const;

    /** Where an LPN currently lives, or nullopt when unmapped. */
    std::optional<Ppa> mappedPpa(std::uint64_t lpn) const;

    /** DRAM address of reliability staging slot @p slot. */
    std::uint64_t reliabilityScratchAddr(std::uint32_t slot) const;

    /** Raw physical-page read into DRAM, full OpResult delivered to the
     *  caller (patrol reads want the ECC near-miss margin, rebuilds
     *  want hard failure detail). */
    void readPhysical(std::uint32_t chip, std::uint32_t block,
                      std::uint32_t page, std::uint64_t dram_addr,
                      std::function<void(const core::OpResult &)> cb);

    /**
     * Relocate one live LPN (read + rewrite, keeping its seq so a
     * racing host overwrite still wins). Requests are serialized
     * through the FTL's refresh staging page. @p preferred_chip steers
     * the destination (-1 = round-robin) — the scrubber points it at
     * the coldest chip, which is what spreads wear across chips.
     */
    void refreshLpn(std::uint64_t lpn, Callback cb,
                    std::int32_t preferred_chip = -1);

    /**
     * Rewrite @p lpn from DRAM (RAIN rebuild output), but only when the
     * map still points at @p expected — a host overwrite that landed
     * mid-rebuild wins. Keeps the LPN's seq, like refreshLpn.
     */
    void rewritePage(std::uint64_t lpn, const Ppa &expected,
                     std::uint64_t dram_addr, Callback cb,
                     std::int32_t preferred_chip = -1);

    /**
     * Program one RAIN parity page. Parity never enters the L2P map:
     * the page is carried with OobState::RainParity and lpn=stripe id,
     * and mount-scan skips it. @p avoid_chip_mask excludes the stripe's
     * member chips so one die loss never takes two stripe units.
     */
    void writeParity(std::uint64_t stripe_id, std::uint64_t dram_addr,
                     std::uint32_t avoid_chip_mask,
                     std::function<void(bool ok, Ppa at)> cb);

    /** Chip with the least total wear among live chips not in
     *  @p exclude_mask, or -1 when none qualify. */
    std::int32_t coldestChip(std::uint32_t exclude_mask = 0) const;

    /** True once @p chip has been declared dead (die failure). */
    bool chipDead(std::uint32_t chip) const
    {
        return chip < 64 && (deadChipMask_ >> chip) & 1;
    }

    /**
     * Take a chip out of service: allocation skips it, its queued
     * writes re-route, GC/WL stop touching it. Called by the harness
     * right after FaultEngine::failDie, and by the FTL itself when the
     * engine reports a die-wide dead region under a failing op.
     */
    void markChipDead(std::uint32_t chip);

    // --- Reliability hook points (set once, before traffic) ---

    /** Every committed data program (map installed / move landed):
     *  the RAIN manager folds the page into its open stripe here. */
    std::function<void(const Ppa &at, std::uint64_t lpn,
                       std::uint64_t dram_addr, OobState state)>
        onProgramCommitted;

    /** Async gate before any block erase. The RAIN manager refreshes
     *  live members of stripes touching the block, then calls
     *  @p proceed to let the erase go. Unset = erase immediately. */
    std::function<void(std::uint32_t chip, std::uint32_t block,
                       std::function<void()> proceed)>
        beforeErase;

    /** Last-resort read repair: a host/refresh read failed all retries.
     *  The RAIN manager XOR-rebuilds into @p dram_addr and reports via
     *  @p done. Unset (or done(false)) = the read is lost. */
    std::function<void(std::uint64_t lpn, Ppa at, std::uint64_t dram_addr,
                       Callback done)>
        onReadFailed;

    /** A chip was just declared dead — the RAIN manager starts its
     *  background rebuild sweep here. */
    std::function<void(std::uint32_t chip)> onChipDead;

    // --- Stats / introspection ---
    std::uint64_t hostReads() const { return hostReads_; }
    std::uint64_t hostWrites() const { return hostWrites_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t gcPageMoves() const { return gcPageMoves_; }
    std::uint64_t wearLevelRuns() const { return wlRuns_; }
    std::uint64_t wearLevelPageMoves() const { return wlPageMoves_; }
    std::uint64_t erasesIssued() const { return erases_; }
    std::uint64_t blocksRetired() const { return retired_; }
    std::uint64_t mountPagesScanned() const { return mountPagesScanned_; }
    std::uint64_t mountTornPages() const { return mountTornPages_; }
    std::uint64_t writeBufferHits() const { return wbHits_; }
    std::uint64_t writeBufferFlushes() const { return wbFlushes_; }
    std::uint64_t readFailures() const { return readFailures_; }
    std::uint64_t dataLoss() const { return dataLoss_; }
    std::uint64_t refreshMoves() const { return refreshes_; }

    /** The current grown-defect table: every bad block, both recovered
     *  ones and those retired during this mount. */
    std::vector<GrownDefect> exportGrownDefects() const;

    /** Spread of per-block erase counts on a chip (wear levelling). */
    std::uint32_t maxEraseCount(std::uint32_t chip) const;
    std::uint32_t minFreeEraseCount(std::uint32_t chip) const;
    std::uint32_t wearSpread(std::uint32_t chip) const;

  private:
    static constexpr std::uint64_t kUnmapped = ~std::uint64_t(0);

    struct BlockInfo
    {
        std::vector<std::uint64_t> pageLpn; //!< lpn per page (reverse map)
        std::uint32_t written = 0;          //!< pages reserved for writes
        std::uint32_t programmed = 0;       //!< programs actually landed
        std::uint32_t valid = 0;            //!< still-mapped pages
        std::uint32_t eraseCount = 0;
        /** Host reads since the last erase (scrub disturb trigger). */
        std::uint64_t hostReads = 0;
        bool erased = false;
        bool bad = false;
    };

    struct PendingWrite
    {
        std::uint64_t lpn;
        std::uint64_t dramAddr;
        Callback cb;
        std::uint32_t retries = 0;
        OobState state = OobState::HostWrite;

        /** The write's sequence number, fixed at enqueue time so seq
         *  order equals host-issue order even when generations of one
         *  LPN queue on different chips. Host writes draw a fresh seq;
         *  GC/WL moves reuse the seq of the copy being relocated, so a
         *  concurrent host overwrite (which holds a younger seq) beats
         *  the move both in the live map and in mount-time arbitration
         *  — a move can never resurrect stale data. */
        std::uint64_t moveSeq = 0;

        /** FTL-write span; stays open across program retries. */
        obs::SpanId span = obs::kNoSpan;

        /** RAIN parity writes only (state == RainParity): where the
         *  parity landed. Parity bypasses the L2P map entirely. */
        std::function<void(bool ok, Ppa at)> parityCb;
    };

    struct ChipState
    {
        std::vector<BlockInfo> blocks;
        std::deque<std::uint32_t> freeBlocks;
        std::deque<PendingWrite> writeQueue;
        std::int32_t activeBlock = -1;
        bool erasePending = false;
        bool gcInProgress = false;
        bool wlInProgress = false;
        /** The active block was carved from the last free block for a
         *  GC/WL move: host writes keep out until the migration's
         *  erase replenishes the pool, or the moves themselves would
         *  run out of pages. */
        bool activeReserved = false;

        /** Blocks retired but not yet journalled to flash: each entry
         *  rides in the OOB record of the chip's next program. */
        std::deque<std::uint32_t> defectJournal;

        /** Blocks erased but not yet reprogrammed, with their post-
         *  erase counts: journalled through the OOB of subsequent
         *  programs (like defects) so a free block's erase count
         *  survives a remount — the ROADMAP-flagged eraseCount-0 gap. */
        std::deque<std::pair<std::uint32_t, std::uint32_t>> eraseJournal;
    };

    /** One write-buffer slot (a page-sized DRAM staging region). */
    struct BufferSlot
    {
        std::uint64_t lpn = kUnmapped;
        bool flushing = false; //!< program in flight; slot pinned
        std::vector<Callback> cbs;
    };

    /** Transient per-mount scan state (freed when the scan finishes). */
    struct MountScan;

    void allocateAndWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                          Callback cb, std::uint32_t retries = 0,
                          obs::SpanId span = obs::kNoSpan,
                          OobState state = OobState::HostWrite,
                          std::uint64_t move_seq = 0,
                          std::int32_t preferred_chip = -1);
    void enqueueWrite(PendingWrite pw, std::int32_t preferred_chip);
    void pumpWrites(std::uint32_t chip);
    bool ensureActiveBlock(std::uint32_t chip, bool for_move = false);
    bool gcReclaimable(std::uint32_t chip) const;
    void startEraseBeforeUse(std::uint32_t chip, std::uint32_t block);
    void retireBlock(std::uint32_t chip, std::uint32_t block);
    void maybeStartGc(std::uint32_t chip);
    void maybeStartWearLevel(std::uint32_t chip);
    void moveNext(std::uint32_t chip, std::uint32_t victim,
                  std::uint32_t page, OobState mode);
    void invalidate(std::uint64_t lpn);

    // Write-buffer plumbing.
    std::uint64_t slotAddr(std::uint32_t slot) const;
    void bufferWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                     Callback cb);
    void flushBuffer();
    std::uint32_t bufferedCount() const;

    // Mount plumbing.
    void mountScanNext(std::uint32_t chip);
    void finishMount();

    // Reliability plumbing.
    struct RefreshJob
    {
        std::uint64_t lpn;
        Callback cb;
        std::int32_t preferredChip;
    };
    void pumpRefresh();
    void noteChipFault(std::uint32_t chip);
    void pushEraseJournal(std::uint32_t chip, std::uint32_t block);

    core::FlashBackend &backend_;
    FtlConfig cfg_;
    std::uint32_t pageBytes_;
    std::uint32_t pagesPerBlock_;
    std::uint32_t oobBytes_;
    std::uint64_t logicalPages_;

    std::vector<std::uint64_t> map_; //!< lpn -> packed ppa or kUnmapped
    std::vector<std::uint64_t> mapSeq_; //!< seq that installed map_[lpn]
    std::vector<ChipState> chips_;
    std::uint32_t writeCursor_ = 0; //!< round-robin chip for striping

    /** Global program sequence number (ties broken by construction:
     *  every program gets a fresh one; mount resumes past the max). */
    std::uint64_t seq_ = 1;

    /** Scratch DRAM region for GC/WL page moves (top of the buffer). */
    std::uint64_t gcScratchAddr_;

    // Write buffer state.
    std::vector<BufferSlot> wbSlots_;
    std::uint64_t wbBase_ = 0; //!< DRAM address of slot 0
    bool wbTimerArmed_ = false;
    Callback wbFlushCb_; //!< pending flush() waiter
    std::uint32_t wbOutstanding_ = 0; //!< slots mid-program

    std::unique_ptr<MountScan> mountScan_;

    // Reliability state.
    std::uint64_t deadChipMask_ = 0;
    std::uint32_t hostInflight_ = 0;
    std::uint64_t reliabilityScratchBase_ = 0;
    std::deque<RefreshJob> refreshQueue_;
    bool refreshBusy_ = false;
    std::uint64_t readFailures_ = 0;
    std::uint64_t dataLoss_ = 0;
    std::uint64_t refreshes_ = 0;

    std::uint64_t hostReads_ = 0;
    std::uint64_t hostWrites_ = 0;
    std::uint64_t gcRuns_ = 0;
    std::uint64_t gcPageMoves_ = 0;
    std::uint64_t wlRuns_ = 0;
    std::uint64_t wlPageMoves_ = 0;
    std::uint64_t erases_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t mountPagesScanned_ = 0;
    std::uint64_t mountTornPages_ = 0;
    std::uint64_t wbHits_ = 0;
    std::uint64_t wbFlushes_ = 0;

    static std::uint64_t packPpa(const Ppa &p);
    static Ppa unpackPpa(std::uint64_t packed);

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;
    std::uint32_t lblMount_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::ftl

#endif // BABOL_FTL_FTL_HH
