/**
 * @file
 * A page-mapped Flash Translation Layer.
 *
 * The FTL is a substrate in this reproduction (the paper swaps only the
 * Storage Controller), so it is deliberately conventional:
 *
 *  - an LPN→PPN map with way-striped allocation (sequential LPNs land
 *    on successive chips, like the Cosmos+ firmware),
 *  - erase-before-use block management with per-chip write queues,
 *  - greedy garbage collection (min-valid victim),
 *  - dynamic wear levelling (allocation prefers the coldest free
 *    block), and
 *  - bad-block retirement: blocks whose erase or program fails are
 *    taken out of service and in-flight writes re-routed.
 *
 * It runs on any FlashBackend — a single channel controller or a
 * multi-channel Ssd.
 */

#ifndef BABOL_FTL_FTL_HH
#define BABOL_FTL_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/flash_backend.hh"
#include "obs/hub.hh"
#include "sim/sim_object.hh"

namespace babol::ftl {

/** One grown-defect entry: a block retired after a program or erase
 *  failure. The table is what survives a power cycle — export it at
 *  shutdown, feed it back through FtlConfig at the next mount. */
struct GrownDefect
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
};

struct FtlConfig
{
    /** Blocks per chip the FTL manages (a slice keeps tests fast). */
    std::uint32_t blocksPerChip = 64;

    /** Reserve this fraction of blocks as over-provisioning for GC. */
    double overprovision = 0.125;

    /** Start GC when a chip's free-block pool drops this low. */
    std::uint32_t gcLowWater = 2;

    /** Give up on a host write after this many bad-block reroutes. */
    std::uint32_t maxWriteRetries = 3;

    /** Grown defects known from a previous mount: marked bad up front
     *  and never allocated (they consume over-provisioning). */
    std::vector<GrownDefect> grownDefects;
};

/** A physical page address. */
struct Ppa
{
    std::uint32_t chip = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;
};

class PageFtl : public SimObject
{
  public:
    using Callback = std::function<void(bool ok)>;

    PageFtl(EventQueue &eq, const std::string &name,
            core::FlashBackend &backend, FtlConfig cfg = {});

    /** Logical pages this FTL exposes. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    std::uint32_t pageBytes() const { return pageBytes_; }

    /** Read one logical page into DRAM at @p dram_addr. */
    void readPage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** Write one logical page from DRAM at @p dram_addr. */
    void writePage(std::uint64_t lpn, std::uint64_t dram_addr, Callback cb);

    /** True when the LPN has ever been written. */
    bool isMapped(std::uint64_t lpn) const;

    /** The flash back end this FTL drives. */
    core::FlashBackend &backend() { return backend_; }

    // --- Stats / introspection ---
    std::uint64_t hostReads() const { return hostReads_; }
    std::uint64_t hostWrites() const { return hostWrites_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t gcPageMoves() const { return gcPageMoves_; }
    std::uint64_t erasesIssued() const { return erases_; }
    std::uint64_t blocksRetired() const { return retired_; }

    /** The current grown-defect table: every bad block, both imported
     *  ones and those retired during this mount. */
    std::vector<GrownDefect> exportGrownDefects() const;

    /** Spread of per-block erase counts on a chip (wear levelling). */
    std::uint32_t maxEraseCount(std::uint32_t chip) const;
    std::uint32_t minFreeEraseCount(std::uint32_t chip) const;

  private:
    static constexpr std::uint64_t kUnmapped = ~std::uint64_t(0);

    struct BlockInfo
    {
        std::vector<std::uint64_t> pageLpn; //!< lpn per page (reverse map)
        std::uint32_t written = 0;          //!< pages reserved for writes
        std::uint32_t programmed = 0;       //!< programs actually landed
        std::uint32_t valid = 0;            //!< still-mapped pages
        std::uint32_t eraseCount = 0;
        bool erased = false;
        bool bad = false;
    };

    struct PendingWrite
    {
        std::uint64_t lpn;
        std::uint64_t dramAddr;
        Callback cb;
        std::uint32_t retries = 0;

        /** FTL-write span; stays open across program retries. */
        obs::SpanId span = obs::kNoSpan;
    };

    struct ChipState
    {
        std::vector<BlockInfo> blocks;
        std::deque<std::uint32_t> freeBlocks;
        std::deque<PendingWrite> writeQueue;
        std::int32_t activeBlock = -1;
        bool erasePending = false;
        bool gcInProgress = false;
    };

    void allocateAndWrite(std::uint64_t lpn, std::uint64_t dram_addr,
                          Callback cb, std::uint32_t retries = 0,
                          obs::SpanId span = obs::kNoSpan);
    void pumpWrites(std::uint32_t chip);
    bool ensureActiveBlock(std::uint32_t chip);
    void startEraseBeforeUse(std::uint32_t chip, std::uint32_t block);
    void retireBlock(std::uint32_t chip, std::uint32_t block);
    void maybeStartGc(std::uint32_t chip);
    void gcMoveNext(std::uint32_t chip, std::uint32_t victim,
                    std::uint32_t page);
    void invalidate(std::uint64_t lpn);

    core::FlashBackend &backend_;
    FtlConfig cfg_;
    std::uint32_t pageBytes_;
    std::uint32_t pagesPerBlock_;
    std::uint64_t logicalPages_;

    std::vector<std::uint64_t> map_; //!< lpn -> packed ppa or kUnmapped
    std::vector<ChipState> chips_;
    std::uint32_t writeCursor_ = 0; //!< round-robin chip for striping

    /** Scratch DRAM region for GC page moves (top of the buffer). */
    std::uint64_t gcScratchAddr_;

    std::uint64_t hostReads_ = 0;
    std::uint64_t hostWrites_ = 0;
    std::uint64_t gcRuns_ = 0;
    std::uint64_t gcPageMoves_ = 0;
    std::uint64_t erases_ = 0;
    std::uint64_t retired_ = 0;

    std::uint64_t packPpa(const Ppa &p) const;
    Ppa unpackPpa(std::uint64_t packed) const;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::ftl

#endif // BABOL_FTL_FTL_HH
