/**
 * @file
 * Per-page out-of-band record: the FTL's on-flash metadata.
 *
 * Every PAGE PROGRAM carries a small record in the page's OOB tail
 * (past the ECC spare area), written atomically with the payload by the
 * same array commit. On mount the FTL reads these records back — raw,
 * no ECC — and reconstructs the entire logical-to-physical state from
 * flash alone: the L2P map, valid bitmaps, per-block erase counts, and
 * the grown-defect table.
 *
 * The OOB path deliberately bypasses the ECC engine (the mount scan
 * must not depend on the very metadata it is rebuilding), so the record
 * protects itself: the 96-byte tail holds THREE copies of a 32-byte
 * CRC-guarded record. A raw bit flip can corrupt one copy; only a torn
 * page — a program cut mid-flight by a power loss — leaves all three
 * invalid. Redundant-copy-with-checksum is the same idiom ONFI uses for
 * the parameter page.
 *
 * Record layout v2 (little-endian, 32 bytes per copy):
 *
 *   off  size  field
 *   0    1     magic (0xB6)
 *   1    1     state: 1 = host write, 2 = GC move, 3 = wear-level move,
 *              4 = RAIN parity page, 5 = scrub refresh move
 *   2    8     lpn (RAIN parity pages: the stripe id)
 *   10   6     seq (global program sequence number; highest wins)
 *   16   4     eraseCount of the containing block at program time
 *   20   4     defect journal entry: chip-local id of a block retired as
 *              a grown defect, or 0xFFFFFFFF for none. Piggybacked on
 *              the next program of the same chip after a retirement.
 *   24   2     erase journal entry: chip-local id of a block erased but
 *              not yet reprogrammed, or 0xFFFF for none. Without it a
 *              free block's erase count would vanish on remount (its
 *              own OOB went with the erase) — the ROADMAP-flagged
 *              eraseCount-0 bug.
 *   26   2     erase count of the journalled block (saturating)
 *   28   4     CRC-32 (poly 0xEDB88320) over bytes 0..27
 */

#ifndef BABOL_FTL_OOB_HH
#define BABOL_FTL_OOB_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace babol::ftl {

/** Why a page was written — recovered verbatim on mount. */
enum class OobState : std::uint8_t {
    HostWrite = 1,
    GcMove = 2,
    WlMove = 3,
    RainParity = 4, //!< XOR parity page; never enters the L2P map
    ScrubMove = 5,  //!< patrol-scrub refresh relocation
};

/** One page's OOB metadata, in decoded form. */
struct OobRecord
{
    std::uint64_t lpn = 0;
    std::uint64_t seq = 0; //!< stored in 48 bits; must fit
    std::uint32_t eraseCount = 0;
    /** Chip-local block id retired as a grown defect, or kNoDefect. */
    std::uint32_t defectEntry = kNoDefect;
    /** Erase journal: chip-local id of a block erased but not yet
     *  reprogrammed, or kNoErase, plus its post-erase erase count. */
    std::uint32_t eraseEntry = kNoErase;
    std::uint32_t eraseEntryCount = 0;
    OobState state = OobState::HostWrite;

    static constexpr std::uint32_t kNoDefect = 0xFFFFFFFFu;
    static constexpr std::uint32_t kNoErase = 0xFFFFu;
};

/** Bytes per record copy and copies per page tail. */
constexpr std::uint32_t kOobRecordBytes = 32;
constexpr std::uint32_t kOobCopies = 3;

/** CRC-32 (reflected, poly 0xEDB88320) of @p bytes, init/final ~0. */
std::uint32_t oobCrc32(std::span<const std::uint8_t> bytes);

/**
 * Encode @p rec as kOobCopies identical CRC-guarded copies, sized for a
 * geometry whose pageOobBytes >= kOobCopies * kOobRecordBytes (any
 * excess is 0xFF-padded).
 */
std::vector<std::uint8_t> encodeOob(const OobRecord &rec,
                                    std::uint32_t oobBytes);

/**
 * Decode a raw OOB tail. Returns the first copy whose magic and CRC
 * check out, or nullopt when no copy survives — which means either an
 * unprogrammed page (all-FF; see oobErased()) or a torn program.
 */
std::optional<OobRecord> decodeOob(std::span<const std::uint8_t> bytes);

/** True when the tail is all-FF: the page was never programmed. */
bool oobErased(std::span<const std::uint8_t> bytes);

} // namespace babol::ftl

#endif // BABOL_FTL_OOB_HH
