/**
 * @file
 * The Host Interface Controller (the NVMe-facing box of the paper's
 * Fig. 1, in simplified form).
 *
 * Hosts speak sectors (4 KiB); flash speaks 16 KiB pages. The HIC
 * splits each host I/O into page-sized FTL operations, gathers partial
 * pages through scratch buffers, and performs read-modify-write for
 * sub-page writes. Concurrent sub-page accesses to the same logical
 * page serialize (per-page locking), so RMW never loses updates.
 */

#ifndef BABOL_HOST_HIC_HH
#define BABOL_HOST_HIC_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "ftl/ftl.hh"

namespace babol::host {

/** One host I/O in sectors. */
struct HostIo
{
    bool write = false;
    std::uint64_t lba = 0;       //!< first sector
    std::uint32_t sectors = 1;   //!< length in sectors
    std::uint64_t dramAddr = 0;  //!< host buffer in staging DRAM
    std::function<void(bool ok)> onComplete;
};

struct HicConfig
{
    std::uint32_t sectorBytes = 4096;

    /** Scratch slots for partial-page gathers/RMW (bounds concurrent
     *  sub-page operations). */
    std::uint32_t scratchSlots = 8;

    /**
     * Host I/Os the HIC accepts concurrently; 0 = unbounded (the
     * pre-queueing behaviour). Queue-pair front ends gate their command
     * fetch on canAccept(), so a full HIC backs traffic up into the
     * submission queues instead of growing unbounded internal state.
     */
    std::uint32_t maxInflight = 0;
};

class Hic : public SimObject
{
  public:
    Hic(EventQueue &eq, const std::string &name, ftl::PageFtl &ftl,
        HicConfig cfg = {});

    /** Sectors the device exposes. */
    std::uint64_t totalSectors() const
    {
        return ftl_.logicalPages() * sectorsPerPage_;
    }

    std::uint32_t sectorBytes() const { return cfg_.sectorBytes; }
    std::uint32_t sectorsPerPage() const { return sectorsPerPage_; }

    /** Accept one host I/O. Callers must hold canAccept() true. */
    void submit(HostIo io);

    /** True while the in-flight window has room for another submit. */
    bool canAccept() const
    {
        return cfg_.maxInflight == 0 || inFlight_ < cfg_.maxInflight;
    }

    std::uint32_t inFlight() const { return inFlight_; }
    std::uint32_t maxInflight() const { return cfg_.maxInflight; }

    /** The staging DRAM behind this HIC (queue rings live here too). */
    dram::DramBuffer &dram() { return ftl_.backend().backendDram(); }

    // --- Stats ---
    std::uint64_t iosCompleted() const { return iosCompleted_; }
    std::uint64_t iosFailed() const { return iosFailed_; }
    std::uint64_t pageOpsIssued() const { return pageOps_; }
    std::uint64_t rmwCount() const { return rmw_; }

  private:
    /** Tracking for one split host I/O. */
    struct IoState
    {
        HostIo io;
        std::uint32_t outstanding = 0;
        bool failed = false;
        bool issuedAll = false;

        /** Root span of this host command (tracing). */
        obs::SpanId span = obs::kNoSpan;
    };

    void issuePagePiece(std::shared_ptr<IoState> state, std::uint64_t lpn,
                        std::uint32_t first_sector,
                        std::uint32_t sector_count,
                        std::uint64_t host_addr);
    void pieceDone(const std::shared_ptr<IoState> &state, bool ok);

    // Per-page serialization for sub-page operations.
    void lockPage(std::uint64_t lpn, std::function<void()> fn);
    void unlockPage(std::uint64_t lpn);

    // Scratch-slot pool.
    void withScratch(std::function<void(std::uint64_t addr)> fn);
    void releaseScratch(std::uint64_t addr);

    ftl::PageFtl &ftl_;
    HicConfig cfg_;
    std::uint32_t sectorsPerPage_;

    std::deque<std::uint64_t> freeScratch_;
    std::deque<std::function<void(std::uint64_t)>> scratchWaiters_;

    std::unordered_set<std::uint64_t> lockedPages_;
    std::unordered_map<std::uint64_t, std::deque<std::function<void()>>>
        pageWaiters_;

    std::uint32_t inFlight_ = 0;
    std::uint64_t iosCompleted_ = 0;
    std::uint64_t iosFailed_ = 0;
    std::uint64_t pageOps_ = 0;
    std::uint64_t rmw_ = 0;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::host

#endif // BABOL_HOST_HIC_HH
