#include "hic.hh"

namespace babol::host {

Hic::Hic(EventQueue &eq, const std::string &name, ftl::PageFtl &ftl,
         HicConfig cfg)
    : SimObject(eq, name), ftl_(ftl), cfg_(cfg),
      metrics_(obs::metrics(), name)
{
    obsTrack_ = obs::interner().intern(name);
    lblRead_ = obs::interner().intern("io.read");
    lblWrite_ = obs::interner().intern("io.write");
    metrics_.value("ios_completed", [this] { return iosCompleted_; });
    metrics_.value("ios_failed", [this] { return iosFailed_; });
    metrics_.value("page_ops", [this] { return pageOps_; });
    metrics_.value("rmw", [this] { return rmw_; });
    metrics_.value("in_flight", [this] { return inFlight_; });

    babol_assert(ftl.pageBytes() % cfg_.sectorBytes == 0,
                 "page size %u not a multiple of the sector size %u",
                 ftl.pageBytes(), cfg_.sectorBytes);
    sectorsPerPage_ = ftl.pageBytes() / cfg_.sectorBytes;

    // Scratch slots sit just below the FTL's GC page at the top of DRAM.
    dram::DramBuffer &dram = ftl_.backend().backendDram();
    std::uint64_t needed =
        static_cast<std::uint64_t>(cfg_.scratchSlots + 1) *
        ftl.pageBytes();
    babol_assert(dram.size() > needed, "DRAM too small for HIC scratch");
    for (std::uint32_t i = 0; i < cfg_.scratchSlots; ++i) {
        freeScratch_.push_back(dram.size() -
                               static_cast<std::uint64_t>(i + 2) *
                                   ftl.pageBytes());
    }
}

void
Hic::lockPage(std::uint64_t lpn, std::function<void()> fn)
{
    if (lockedPages_.count(lpn)) {
        pageWaiters_[lpn].push_back(std::move(fn));
        return;
    }
    lockedPages_.insert(lpn);
    fn();
}

void
Hic::unlockPage(std::uint64_t lpn)
{
    auto it = pageWaiters_.find(lpn);
    if (it != pageWaiters_.end() && !it->second.empty()) {
        auto fn = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty())
            pageWaiters_.erase(it);
        fn(); // lock passes to the next waiter
        return;
    }
    lockedPages_.erase(lpn);
}

void
Hic::withScratch(std::function<void(std::uint64_t)> fn)
{
    if (freeScratch_.empty()) {
        scratchWaiters_.push_back(std::move(fn));
        return;
    }
    std::uint64_t addr = freeScratch_.front();
    freeScratch_.pop_front();
    fn(addr);
}

void
Hic::releaseScratch(std::uint64_t addr)
{
    if (!scratchWaiters_.empty()) {
        auto fn = std::move(scratchWaiters_.front());
        scratchWaiters_.pop_front();
        fn(addr); // slot passes to the next waiter
        return;
    }
    freeScratch_.push_back(addr);
}

void
Hic::pieceDone(const std::shared_ptr<IoState> &state, bool ok)
{
    if (!ok)
        state->failed = true;
    babol_assert(state->outstanding > 0, "piece completion underflow");
    --state->outstanding;
    if (state->issuedAll && state->outstanding == 0) {
        if (state->failed)
            ++iosFailed_;
        else
            ++iosCompleted_;
        babol_assert(inFlight_ > 0, "in-flight window underflow");
        --inFlight_;
        obs::trace().endSpan(state->span, curTick());
        if (state->io.onComplete)
            state->io.onComplete(!state->failed);
    }
}

void
Hic::submit(HostIo io)
{
    babol_assert(io.sectors >= 1, "empty host I/O");
    babol_assert(canAccept(),
                 "HIC over its in-flight window (%u of %u): gate "
                 "submissions on canAccept()",
                 inFlight_, cfg_.maxInflight);
    ++inFlight_;
    babol_assert(io.lba + io.sectors <= totalSectors(),
                 "host I/O [%llu, %llu) beyond device end %llu",
                 static_cast<unsigned long long>(io.lba),
                 static_cast<unsigned long long>(io.lba + io.sectors),
                 static_cast<unsigned long long>(totalSectors()));

    auto state = std::make_shared<IoState>();
    state->io = std::move(io);
    state->span = obs::trace().beginSpan(
        obsTrack_, state->io.write ? lblWrite_ : lblRead_, curTick(),
        obs::currentCtx(), state->io.lba);

    const std::uint64_t lba = state->io.lba;
    const std::uint64_t end = lba + state->io.sectors;
    const std::uint64_t first_lpn = lba / sectorsPerPage_;
    const std::uint64_t last_lpn = (end - 1) / sectorsPerPage_;

    for (std::uint64_t lpn = first_lpn; lpn <= last_lpn; ++lpn) {
        std::uint64_t page_start = lpn * sectorsPerPage_;
        std::uint32_t s0 = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(lba, page_start) - page_start);
        std::uint32_t s1 = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end, page_start + sectorsPerPage_) -
            page_start);
        std::uint64_t host_addr =
            state->io.dramAddr +
            (page_start + s0 - lba) * cfg_.sectorBytes;
        ++state->outstanding;
        issuePagePiece(state, lpn, s0, s1 - s0, host_addr);
    }
    state->issuedAll = true;
    if (state->outstanding == 0) { // cannot happen with sectors >= 1
        --inFlight_;
        if (state->io.onComplete)
            state->io.onComplete(true);
    }
}

void
Hic::issuePagePiece(std::shared_ptr<IoState> state, std::uint64_t lpn,
                    std::uint32_t first_sector,
                    std::uint32_t sector_count, std::uint64_t host_addr)
{
    dram::DramBuffer &dram = ftl_.backend().backendDram();
    const bool full = first_sector == 0 && sector_count == sectorsPerPage_;
    const std::uint32_t byte_off = first_sector * cfg_.sectorBytes;
    const std::uint32_t byte_len = sector_count * cfg_.sectorBytes;

    auto done = [this, state](bool ok) { pieceDone(state, ok); };

    // FTL calls run under the host command's span so the FTL spans
    // parent correctly even when deferred by page locks or scratch
    // waits (the lambdas carry the id; ScopedCtx installs it).
    const obs::SpanId span = state->span;

    if (!state->io.write) {
        // READ. Unwritten pages read back as zeros, as real devices
        // guarantee deterministic data for unwritten LBAs.
        if (!ftl_.isMapped(lpn)) {
            std::vector<std::uint8_t> zeros(byte_len, 0);
            dram.write(host_addr, zeros);
            eq_.scheduleIn(0, [done] { done(true); }, "hic zero read");
            return;
        }
        if (full) {
            ++pageOps_;
            obs::Hub::ScopedCtx ctx(span);
            ftl_.readPage(lpn, host_addr, done);
            return;
        }
        // Partial read: gather through a scratch slot.
        lockPage(lpn, [this, lpn, host_addr, byte_off, byte_len, done,
                       span] {
            withScratch([this, lpn, host_addr, byte_off, byte_len, done,
                         span](std::uint64_t scratch) {
                ++pageOps_;
                obs::Hub::ScopedCtx ctx(span);
                ftl_.readPage(lpn, scratch, [this, lpn, host_addr,
                                             byte_off, byte_len, done,
                                             scratch](bool ok) {
                    if (ok) {
                        dram::DramBuffer &d =
                            ftl_.backend().backendDram();
                        std::vector<std::uint8_t> buf(byte_len);
                        d.read(scratch + byte_off, buf);
                        d.write(host_addr, buf);
                    }
                    releaseScratch(scratch);
                    unlockPage(lpn);
                    done(ok);
                });
            });
        });
        return;
    }

    // WRITE.
    if (full) {
        ++pageOps_;
        obs::Hub::ScopedCtx ctx(span);
        ftl_.writePage(lpn, host_addr, done);
        return;
    }

    // Sub-page write: read-modify-write under the page lock.
    ++rmw_;
    lockPage(lpn, [this, lpn, host_addr, byte_off, byte_len, done,
                   span] {
        withScratch([this, lpn, host_addr, byte_off, byte_len, done,
                     span](std::uint64_t scratch) {
            auto overlay_and_write = [this, lpn, host_addr, byte_off,
                                      byte_len, done, scratch, span] {
                dram::DramBuffer &d = ftl_.backend().backendDram();
                std::vector<std::uint8_t> buf(byte_len);
                d.read(host_addr, buf);
                d.write(scratch + byte_off, buf);
                ++pageOps_;
                obs::Hub::ScopedCtx ctx(span);
                ftl_.writePage(lpn, scratch, [this, lpn, done,
                                              scratch](bool ok) {
                    releaseScratch(scratch);
                    unlockPage(lpn);
                    done(ok);
                });
            };

            if (ftl_.isMapped(lpn)) {
                ++pageOps_;
                obs::Hub::ScopedCtx ctx(span);
                ftl_.readPage(lpn, scratch, [this, lpn, done, scratch,
                                             overlay_and_write](bool ok) {
                    if (!ok) {
                        releaseScratch(scratch);
                        unlockPage(lpn);
                        done(false);
                        return;
                    }
                    overlay_and_write();
                });
            } else {
                std::vector<std::uint8_t> zeros(ftl_.pageBytes(), 0);
                ftl_.backend().backendDram().write(scratch, zeros);
                overlay_and_write();
            }
        });
    });
}

} // namespace babol::host
