/**
 * @file
 * NVMe-style multi-queue host front end.
 *
 * Replaces the direct-call generator path with the queueing model a
 * production host interface presents: N paired submission/completion
 * queues resident in the staging DRAM, doorbell registers, per-queue
 * arbitration (round-robin or weighted), and an interrupt-coalescing
 * model (threshold + timer) on the completion side. Everything runs on
 * the host shard's event queue, so runs stay byte-deterministic at any
 * worker-thread count.
 *
 * The model keeps NVMe's essential mechanics without the full spec:
 *
 *  - SQEs are 64 B and CQEs 16 B, serialized into the DRAM model at the
 *    ring slots; fetches and completion posts charge the DRAM port's
 *    transfer time, so queue traffic competes for modeled bandwidth.
 *  - A submission queue holds at most (entries - 1) commands; the host
 *    learns of freed slots only through the SQ-head field carried in
 *    each CQE, exactly the NVMe flow-control loop.
 *  - The device fetches commands only when the HIC can accept more work
 *    (Hic::canAccept), so host queues back up when the device is the
 *    bottleneck — the contended regime the paper never measured.
 *
 * Completion-side commands carry a tenant id; the root span of every
 * command is recorded on a per-tenant track (or the queue's track when
 * untenanted), so Perfetto traces show per-tenant timelines.
 */

#ifndef BABOL_HOST_NVME_NVME_HH
#define BABOL_HOST_NVME_NVME_HH

#include <array>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "host/hic.hh"

namespace babol::host::nvme {

/** One host command, the model's view of an NVMe read/write SQE. */
struct NvmeCommand
{
    bool write = false;
    std::uint64_t slba = 0;    //!< first sector
    std::uint32_t sectors = 1; //!< length in sectors
    std::uint64_t prp = 0;     //!< host data buffer in staging DRAM
    std::uint32_t tenant = kNoTenant;

    static constexpr std::uint32_t kNoTenant = ~std::uint32_t(0);
};

/** Shape of one submission/completion queue pair. */
struct QueuePairConfig
{
    std::uint32_t sqEntries = 64; //!< capacity is sqEntries - 1
    std::uint32_t cqEntries = 64;

    /** Weighted-arbitration credit (ignored under round-robin). */
    std::uint32_t weight = 1;
};

struct NvmeConfig
{
    std::uint32_t queuePairs = 1;

    /** Template for every queue pair (weights overridable per queue). */
    QueuePairConfig qp;

    /** Per-queue weights; empty = qp.weight everywhere. */
    std::vector<std::uint32_t> weights;

    enum class Arbitration { RoundRobin, Weighted };
    Arbitration arb = Arbitration::RoundRobin;

    /** Commands the device keeps in flight toward the HIC across all
     *  queues (the device-side execution window). */
    std::uint32_t maxInflight = 64;

    /** DRAM address where the queue rings live (SQs then CQs, packed). */
    std::uint64_t dramBase = 0;

    /** Posted-MMIO delay of a doorbell write reaching the device. */
    Tick doorbellLatency = 100 * ticks::perNs;

    /** Completion-side interrupt coalescing: raise the interrupt when
     *  this many CQEs are pending, or when the timer expires since the
     *  first un-notified CQE — whichever comes first. */
    std::uint32_t coalesceThreshold = 4;
    Tick coalesceTimer = 20 * ticks::perUs;
};

/**
 * The device-plus-driver model of the queueing front end. Host-side
 * calls (trySubmit, the CQ drain) and device-side machinery (arbiter,
 * fetch, CQE post, interrupts) run on the same host-shard event queue,
 * with the doorbell/interrupt latencies modeling the boundary.
 */
class NvmeFrontEnd : public SimObject
{
  public:
    using CompletionFn = std::function<void(bool ok)>;

    /** (tick, queue, new tail/head, isSubmissionQueue) — test hook. */
    using DoorbellHook =
        std::function<void(Tick, std::uint32_t, std::uint32_t, bool)>;

    NvmeFrontEnd(EventQueue &eq, const std::string &name, Hic &hic,
                 NvmeConfig cfg = {});

    std::uint32_t queuePairs() const { return cfg_.queuePairs; }
    const NvmeConfig &config() const { return cfg_; }
    Hic &hic() { return hic_; }

    /** Submit round-robin across every queue (tenant clients use this
     *  to stripe; pass a real qid to pin a stream to one queue). */
    static constexpr std::uint32_t kAnyQueue = ~std::uint32_t(0);

    /** True when queue @p qid cannot take another command right now. */
    bool sqFull(std::uint32_t qid) const;

    /**
     * Host-side submission: serialize the SQE into the DRAM ring, ring
     * the SQ tail doorbell, and invoke @p cb when the host processes
     * the command's CQE. Returns false (without side effects) when the
     * submission queue is full — the caller must back off and retry,
     * e.g. via onSqSpace().
     */
    bool trySubmit(std::uint32_t qid, const NvmeCommand &cmd,
                   CompletionFn cb);

    /**
     * Run @p fn once, the next time the host's CQ drain frees slots in
     * queue @p qid (any queue when kAnyQueue). Waiters fire in
     * registration order — per-queue FIFO fairness for blocked
     * submitters.
     */
    void onSqSpace(std::uint32_t qid, std::function<void()> fn);

    /** Total DRAM bytes the rings occupy from cfg.dramBase. */
    std::uint64_t ringBytes() const;

    void setDoorbellHook(DoorbellHook hook) { doorbellHook_ = std::move(hook); }

    // --- Stats ---
    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t sqDoorbells() const { return sqDoorbells_; }
    std::uint64_t cqDoorbells() const { return cqDoorbells_; }
    std::uint64_t interrupts() const { return interrupts_; }
    std::uint64_t fetched() const { return fetched_; }
    std::uint64_t sqFullRejects() const { return sqFullRejects_; }
    std::uint64_t hicStalls() const { return hicStalls_; }
    std::uint64_t maxCoalesced() const { return maxCoalesced_; }
    std::uint32_t inflight() const { return inflight_; }

    static constexpr std::uint32_t kSqeBytes = 64;
    static constexpr std::uint32_t kCqeBytes = 16;

  private:
    /** Host-side record of one command awaiting its CQE. */
    struct PendingCmd
    {
        CompletionFn cb;
        obs::SpanId span = obs::kNoSpan;
    };

    struct QueuePair
    {
        QueuePairConfig cfg;
        std::uint64_t sqBase = 0; //!< DRAM address of the SQ ring
        std::uint64_t cqBase = 0;

        // Host-side view.
        std::uint32_t sqTailHost = 0;
        std::uint32_t sqHeadHost = 0; //!< learned from CQE sqHead fields
        std::uint32_t cqHeadHost = 0;
        std::uint16_t nextCid = 0;
        std::unordered_map<std::uint16_t, PendingCmd> pending;
        std::deque<std::function<void()>> sqWaiters;

        // Device-side view.
        std::uint32_t sqTailDev = 0; //!< last doorbell value seen
        std::uint32_t sqHeadDev = 0; //!< next slot to fetch
        std::uint32_t cqTailDev = 0;
        std::uint32_t credits = 0;   //!< weighted-arbitration budget

        // Interrupt coalescing.
        std::uint32_t unNotifiedCqes = 0;
        EventHandle coalesceTimer;
        bool irqPending = false;
    };

    std::uint32_t sqeSlots(const QueuePair &q) const
    {
        return q.cfg.sqEntries;
    }

    /** Commands the device has yet to fetch from @p q. */
    std::uint32_t devPending(const QueuePair &q) const;

    void onSqDoorbell(std::uint32_t qid, std::uint32_t tail);
    void pump();
    bool arbitrate(std::uint32_t &qid);
    void fetchOne(std::uint32_t qid);
    void execute(std::uint32_t qid,
                 const std::array<std::uint8_t, kSqeBytes> &sqe);
    void postCqe(std::uint32_t qid, std::uint16_t cid, bool ok);
    void raiseInterrupt(std::uint32_t qid);
    void hostDrainCq(std::uint32_t qid);
    void wakeSqWaiters(std::uint32_t qid);

    std::uint32_t tenantTrack(std::uint32_t tenant, std::uint32_t qid);

    Hic &hic_;
    NvmeConfig cfg_;
    std::vector<QueuePair> queues_;
    std::uint32_t arbCursor_ = 0;
    std::uint32_t submitCursor_ = 0; //!< kAnyQueue striping
    std::uint32_t inflight_ = 0;
    bool pumpScheduled_ = false;

    std::deque<std::function<void()>> anySqWaiters_;
    DoorbellHook doorbellHook_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t sqDoorbells_ = 0;
    std::uint64_t cqDoorbells_ = 0;
    std::uint64_t interrupts_ = 0;
    std::uint64_t fetched_ = 0;
    std::uint64_t sqFullRejects_ = 0;
    std::uint64_t hicStalls_ = 0;
    std::uint64_t maxCoalesced_ = 0;

    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;
    std::vector<std::uint32_t> queueTracks_;
    std::unordered_map<std::uint32_t, std::uint32_t> tenantTracks_;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::host::nvme

#endif // BABOL_HOST_NVME_NVME_HH
