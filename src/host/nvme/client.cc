#include "client.hh"

namespace babol::host::nvme {

TenantClient::TenantClient(EventQueue &eq, const std::string &name,
                           NvmeFrontEnd &fe, obs::MetricsRegistry &reg,
                           TenantConfig cfg)
    : SimObject(eq, name), fe_(fe), cfg_(cfg), rng_(cfg.seed),
      latencyUs_(name + ".latency_us"), metrics_(reg, name)
{
    babol_assert(cfg_.queueDepth >= 1, "tenant needs queue depth");
    babol_assert(cfg_.sectors >= 1, "empty tenant I/O");
    babol_assert(cfg_.writePercent <= 100, "write percent over 100");

    const std::uint64_t total = fe_.hic().totalSectors();
    rangeFirst_ = cfg_.firstLba;
    rangeSpan_ = cfg_.lbaSpan ? cfg_.lbaSpan : total;
    babol_assert(rangeFirst_ + rangeSpan_ <= total,
                 "tenant LBA range beyond device end");
    babol_assert(rangeSpan_ >= cfg_.sectors,
                 "tenant LBA range smaller than one I/O");

    if (cfg_.ratePerSec > 0) {
        ticksPerToken_ = ticks::perSec / cfg_.ratePerSec;
        babol_assert(ticksPerToken_ > 0, "tenant rate too high to model");
        tokens_ = cfg_.burst;
    }

    metrics_.value("completed", [this] { return completed_; });
    metrics_.value("errors", [this] { return errors_; });
    metrics_.value("throttled_waits", [this] { return throttledWaits_; });
    metrics_.value("sq_waits", [this] { return sqWaits_; });
    metrics_.distribution("latency_us", &latencyUs_);
}

void
TenantClient::start(std::function<void()> on_done)
{
    onDone_ = std::move(on_done);
    running_ = true;
    lastRefill_ = curTick();
    pump();
}

std::uint64_t
TenantClient::takeToken()
{
    if (ticksPerToken_ == 0)
        return 0;
    const Tick now = curTick();
    const std::uint64_t earned = (now - lastRefill_) / ticksPerToken_;
    if (earned > 0) {
        tokens_ = std::min(tokens_ + earned, cfg_.burst);
        lastRefill_ += earned * ticksPerToken_;
    }
    if (tokens_ > 0) {
        --tokens_;
        return 0;
    }
    // Ticks until the next token matures.
    return ticksPerToken_ - (now - lastRefill_);
}

void
TenantClient::pump()
{
    if (!running_)
        return;
    while (outstanding_ < cfg_.queueDepth &&
           (cfg_.totalIos == 0 || issued_ < cfg_.totalIos)) {
        // Check for queue space BEFORE spending a token: a token burnt
        // on a rejected submission would charge the tenant's rate
        // budget for device congestion it didn't cause.
        if (fe_.sqFull(cfg_.queue)) {
            if (!sqWaitArmed_) {
                sqWaitArmed_ = true;
                ++sqWaits_;
                fe_.onSqSpace(cfg_.queue, [this] {
                    sqWaitArmed_ = false;
                    pump();
                });
            }
            return;
        }
        const std::uint64_t wait = takeToken();
        if (wait > 0) {
            // Rate limited: resume exactly when the token matures. The
            // armed flag keeps completion callbacks from stacking a
            // second timer on top.
            if (!tokenWaitArmed_) {
                tokenWaitArmed_ = true;
                ++throttledWaits_;
                scheduleIn(wait,
                           [this] {
                               tokenWaitArmed_ = false;
                               pump();
                           },
                           "tenant token wait");
            }
            return;
        }
        if (!issueOne())
            return; // SQ full; issueOne armed the space waiter
    }
}

bool
TenantClient::issueOne()
{
    NvmeCommand cmd;
    cmd.write = cfg_.writePercent > 0 &&
                rng_.uniform(1, 100) <= cfg_.writePercent;
    cmd.slba = rangeFirst_ +
               rng_.uniform(0, rangeSpan_ - cfg_.sectors);
    cmd.sectors = cfg_.sectors;
    cmd.tenant = cfg_.tenant;

    // Staging slots stride by queue depth: a slot frees exactly when
    // its command completes, so concurrent payloads never collide.
    const std::uint64_t stride =
        static_cast<std::uint64_t>(cfg_.sectors) *
        fe_.hic().sectorBytes();
    cmd.prp = cfg_.dramBase + (issued_ % cfg_.queueDepth) * stride;

    const Tick submit_tick = curTick();
    bool ok = fe_.trySubmit(cfg_.queue, cmd,
                            [this, submit_tick](bool io_ok) {
                                if (!io_ok)
                                    ++errors_;
                                ++completed_;
                                latencyUs_.sample(
                                    ticks::toUs(curTick() - submit_tick));
                                babol_assert(outstanding_ > 0,
                                             "tenant completion underflow");
                                --outstanding_;
                                if (cfg_.totalIos > 0 &&
                                    completed_ == cfg_.totalIos) {
                                    running_ = false;
                                    if (onDone_)
                                        onDone_();
                                    return;
                                }
                                pump();
                            });
    if (!ok) {
        // Unreachable in the pump loop (it checks sqFull first, and
        // nothing runs between the check and this submit), but stay
        // safe: park until the drain frees a slot.
        if (!sqWaitArmed_) {
            sqWaitArmed_ = true;
            ++sqWaits_;
            fe_.onSqSpace(cfg_.queue, [this] {
                sqWaitArmed_ = false;
                pump();
            });
        }
        return false;
    }
    ++issued_;
    ++outstanding_;
    return true;
}

} // namespace babol::host::nvme
