/**
 * @file
 * Simulated tenant clients for multi-tenant QoS experiments.
 *
 * Each TenantClient models one host-side application sharing the device
 * through the NVMe front end: a closed loop of up to queueDepth
 * outstanding random I/Os, throttled by an integer token bucket
 * (tokens/sec with a burst cap), with completion latency sampled into a
 * per-tenant Distribution for p50/p99/p999 SLO reporting.
 *
 * Token-bucket arithmetic is pure tick math (one token every
 * `ticksPerToken` ticks, refill capped at `burst`), so a thousand
 * tenants produce the same byte-exact SLO report on every run and at
 * every worker-thread count.
 */

#ifndef BABOL_HOST_NVME_CLIENT_HH
#define BABOL_HOST_NVME_CLIENT_HH

#include "host/nvme/nvme.hh"
#include "sim/random.hh"

namespace babol::host::nvme {

struct TenantConfig
{
    std::uint32_t tenant = 0; //!< id stamped on commands and spans
    std::uint64_t seed = 1;   //!< address/op stream seed

    /** I/Os this client keeps outstanding (closed-loop depth). */
    std::uint32_t queueDepth = 4;

    /** I/Os to issue before the client reports done; 0 = run until the
     *  owner stops the simulation. */
    std::uint64_t totalIos = 0;

    /** Token bucket: sustained IOPS cap; 0 = unthrottled. */
    std::uint64_t ratePerSec = 0;

    /** Token bucket: burst allowance in I/Os. */
    std::uint64_t burst = 8;

    std::uint32_t sectors = 1;      //!< I/O size in sectors
    std::uint32_t writePercent = 0; //!< 0 = read-only
    std::uint32_t queue = NvmeFrontEnd::kAnyQueue;

    /** DRAM staging region for this tenant's payloads. */
    std::uint64_t dramBase = 0;

    /** Address range restriction in sectors; 0 = whole device. */
    std::uint64_t firstLba = 0;
    std::uint64_t lbaSpan = 0;
};

class TenantClient : public SimObject
{
  public:
    /**
     * @p reg is where the per-tenant SLO distribution registers (the
     * caller owns it — ssd_fio uses a private registry so the SLO JSON
     * holds only tenant rows, sorted by the zero-padded prefix).
     */
    TenantClient(EventQueue &eq, const std::string &name,
                 NvmeFrontEnd &fe, obs::MetricsRegistry &reg,
                 TenantConfig cfg);

    /** Begin issuing; @p on_done fires once totalIos complete. */
    void start(std::function<void()> on_done);

    // --- Results ---
    std::uint64_t completed() const { return completed_; }
    std::uint64_t errors() const { return errors_; }

    /** Times the loop had to wait for a token (throttle pressure). */
    std::uint64_t throttledWaits() const { return throttledWaits_; }

    /** Times the loop had to back off on a full submission queue. */
    std::uint64_t sqWaits() const { return sqWaits_; }

    const Distribution &latencyUs() const { return latencyUs_; }

  private:
    void pump();
    bool issueOne(); //!< false = SQ full, space waiter armed
    std::uint64_t takeToken(); //!< 0 = granted, else ticks until next

    NvmeFrontEnd &fe_;
    TenantConfig cfg_;
    Rng rng_;

    std::function<void()> onDone_;
    bool running_ = false;
    bool tokenWaitArmed_ = false;
    bool sqWaitArmed_ = false;
    std::uint32_t outstanding_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t throttledWaits_ = 0;
    std::uint64_t sqWaits_ = 0;

    // Token bucket (integer tick arithmetic only).
    std::uint64_t ticksPerToken_ = 0; //!< 0 = unthrottled
    std::uint64_t tokens_ = 0;
    Tick lastRefill_ = 0;

    std::uint64_t rangeFirst_ = 0;
    std::uint64_t rangeSpan_ = 0;
    Distribution latencyUs_;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::host::nvme

#endif // BABOL_HOST_NVME_CLIENT_HH
