#include "nvme.hh"

namespace babol::host::nvme {

namespace {

void
putLe(std::uint8_t *p, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getLe(const std::uint8_t *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

NvmeFrontEnd::NvmeFrontEnd(EventQueue &eq, const std::string &name,
                           Hic &hic, NvmeConfig cfg)
    : SimObject(eq, name), hic_(hic), cfg_(cfg),
      metrics_(obs::metrics(), name)
{
    babol_assert(cfg_.queuePairs >= 1 && cfg_.queuePairs <= 4096,
                 "1..4096 queue pairs supported, got %u", cfg_.queuePairs);
    babol_assert(cfg_.maxInflight >= 1, "device window must be >= 1");
    babol_assert(cfg_.weights.empty() ||
                     cfg_.weights.size() == cfg_.queuePairs,
                 "weights must name every queue (%u given, %u queues)",
                 static_cast<unsigned>(cfg_.weights.size()),
                 cfg_.queuePairs);

    lblRead_ = obs::interner().intern("nvme.read");
    lblWrite_ = obs::interner().intern("nvme.write");

    std::uint64_t addr = cfg_.dramBase;
    for (std::uint32_t qid = 0; qid < cfg_.queuePairs; ++qid) {
        QueuePair q;
        q.cfg = cfg_.qp;
        if (!cfg_.weights.empty())
            q.cfg.weight = cfg_.weights[qid];
        babol_assert(q.cfg.sqEntries >= 2 && q.cfg.cqEntries >= 2,
                     "queues need at least 2 entries");
        babol_assert(q.cfg.cqEntries >= q.cfg.sqEntries,
                     "CQ %u smaller than SQ %u would overflow under load",
                     q.cfg.cqEntries, q.cfg.sqEntries);
        babol_assert(q.cfg.weight >= 1, "queue weight must be >= 1");
        q.sqBase = addr;
        addr += std::uint64_t(q.cfg.sqEntries) * kSqeBytes;
        q.cqBase = addr;
        addr += std::uint64_t(q.cfg.cqEntries) * kCqeBytes;
        q.credits = q.cfg.weight;
        queues_.push_back(std::move(q));
        queueTracks_.push_back(
            obs::interner().intern(strfmt("%s.q%u", name.c_str(), qid)));
    }
    babol_assert(addr <= hic_.dram().size(),
                 "queue rings [%llu, %llu) beyond DRAM end %llu",
                 static_cast<unsigned long long>(cfg_.dramBase),
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(hic_.dram().size()));

    metrics_.value("submitted", [this] { return submitted_; });
    metrics_.value("completed", [this] { return completed_; });
    metrics_.value("fetched", [this] { return fetched_; });
    metrics_.value("interrupts", [this] { return interrupts_; });
    metrics_.value("sq_doorbells", [this] { return sqDoorbells_; });
    metrics_.value("cq_doorbells", [this] { return cqDoorbells_; });
    metrics_.value("sq_full_rejects", [this] { return sqFullRejects_; });
    metrics_.value("hic_stalls", [this] { return hicStalls_; });
    metrics_.value("max_coalesced", [this] { return maxCoalesced_; });
}

std::uint64_t
NvmeFrontEnd::ringBytes() const
{
    std::uint64_t bytes = 0;
    for (const QueuePair &q : queues_) {
        bytes += std::uint64_t(q.cfg.sqEntries) * kSqeBytes +
                 std::uint64_t(q.cfg.cqEntries) * kCqeBytes;
    }
    return bytes;
}

std::uint32_t
NvmeFrontEnd::devPending(const QueuePair &q) const
{
    return (q.sqTailDev + q.cfg.sqEntries - q.sqHeadDev) % q.cfg.sqEntries;
}

bool
NvmeFrontEnd::sqFull(std::uint32_t qid) const
{
    if (qid == kAnyQueue) {
        for (const QueuePair &q : queues_) {
            if ((q.sqTailHost + 1) % q.cfg.sqEntries != q.sqHeadHost)
                return false;
        }
        return true;
    }
    babol_assert(qid < queues_.size(), "queue %u out of range", qid);
    const QueuePair &q = queues_[qid];
    return (q.sqTailHost + 1) % q.cfg.sqEntries == q.sqHeadHost;
}

std::uint32_t
NvmeFrontEnd::tenantTrack(std::uint32_t tenant, std::uint32_t qid)
{
    if (tenant == NvmeCommand::kNoTenant)
        return queueTracks_[qid];
    auto it = tenantTracks_.find(tenant);
    if (it != tenantTracks_.end())
        return it->second;
    std::uint32_t track = obs::interner().intern(strfmt("tenant%u", tenant));
    tenantTracks_.emplace(tenant, track);
    return track;
}

bool
NvmeFrontEnd::trySubmit(std::uint32_t qid, const NvmeCommand &cmd,
                        CompletionFn cb)
{
    if (qid == kAnyQueue) {
        // Stripe: first queue with room, scanning from a rotating
        // cursor so load spreads evenly.
        for (std::uint32_t i = 0; i < queues_.size(); ++i) {
            std::uint32_t candidate =
                (submitCursor_ + i) % queues_.size();
            if (!sqFull(candidate)) {
                submitCursor_ = (candidate + 1) % queues_.size();
                return trySubmit(candidate, cmd, std::move(cb));
            }
        }
        ++sqFullRejects_;
        return false;
    }

    babol_assert(qid < queues_.size(), "queue %u out of range", qid);
    QueuePair &q = queues_[qid];
    if ((q.sqTailHost + 1) % q.cfg.sqEntries == q.sqHeadHost) {
        ++sqFullRejects_;
        return false;
    }

    const std::uint16_t cid = q.nextCid++;
    const std::uint32_t slot = q.sqTailHost;
    q.sqTailHost = (q.sqTailHost + 1) % q.cfg.sqEntries;

    // Serialize the SQE into the DRAM-resident ring.
    std::uint8_t sqe[kSqeBytes] = {};
    sqe[0] = cmd.write ? 1 : 2; // NVMe: 01h write, 02h read
    putLe(sqe + 2, cid, 2);
    putLe(sqe + 8, cmd.slba, 8);
    putLe(sqe + 16, cmd.sectors, 4);
    putLe(sqe + 24, cmd.prp, 8);
    putLe(sqe + 32, cmd.tenant, 4);
    hic_.dram().write(q.sqBase + std::uint64_t(slot) * kSqeBytes, sqe);

    PendingCmd pc;
    pc.cb = std::move(cb);
    pc.span = obs::trace().beginSpan(
        tenantTrack(cmd.tenant, qid), cmd.write ? lblWrite_ : lblRead_,
        curTick(), obs::currentCtx(),
        (std::uint64_t(qid) << 48) |
            (std::uint64_t(cmd.tenant & 0xffff) << 32) |
            (cmd.slba & 0xffffffff));
    q.pending.emplace(cid, std::move(pc));
    ++submitted_;

    // Ring the SQ tail doorbell; the posted write lands after the MMIO
    // latency, at which point the device re-arbitrates.
    ++sqDoorbells_;
    if (doorbellHook_)
        doorbellHook_(curTick(), qid, q.sqTailHost, true);
    const std::uint32_t tail = q.sqTailHost;
    eq_.scheduleIn(cfg_.doorbellLatency,
                   [this, qid, tail] { onSqDoorbell(qid, tail); },
                   "nvme sq doorbell");
    return true;
}

void
NvmeFrontEnd::onSqSpace(std::uint32_t qid, std::function<void()> fn)
{
    if (qid == kAnyQueue) {
        anySqWaiters_.push_back(std::move(fn));
        return;
    }
    babol_assert(qid < queues_.size(), "queue %u out of range", qid);
    queues_[qid].sqWaiters.push_back(std::move(fn));
}

void
NvmeFrontEnd::onSqDoorbell(std::uint32_t qid, std::uint32_t tail)
{
    queues_[qid].sqTailDev = tail;
    pump();
}

bool
NvmeFrontEnd::arbitrate(std::uint32_t &qid)
{
    const std::uint32_t n = static_cast<std::uint32_t>(queues_.size());
    if (cfg_.arb == NvmeConfig::Arbitration::RoundRobin) {
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t candidate = (arbCursor_ + i) % n;
            if (devPending(queues_[candidate]) > 0) {
                qid = candidate;
                arbCursor_ = (candidate + 1) % n;
                return true;
            }
        }
        return false;
    }

    // Weighted: spend per-queue credits in cursor order; when every
    // queue with work is out of credits, refill all budgets and take
    // another pass (so weights set the long-run grant ratio).
    for (int round = 0; round < 2; ++round) {
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t candidate = (arbCursor_ + i) % n;
            QueuePair &q = queues_[candidate];
            if (devPending(q) == 0 || q.credits == 0)
                continue;
            --q.credits;
            qid = candidate;
            // Keep the cursor while this queue has credit left: a
            // weight-w queue gets up to w consecutive grants.
            arbCursor_ = q.credits > 0 ? candidate : (candidate + 1) % n;
            return true;
        }
        bool anyWork = false;
        for (QueuePair &q : queues_)
            anyWork = anyWork || devPending(q) > 0;
        if (!anyWork)
            return false;
        for (QueuePair &q : queues_)
            q.credits = q.cfg.weight;
    }
    return false;
}

void
NvmeFrontEnd::pump()
{
    const std::uint32_t hicCap = hic_.maxInflight();
    while (inflight_ < cfg_.maxInflight) {
        if (hicCap != 0 && inflight_ >= hicCap) {
            // Every fetched command is inside the HIC window until its
            // CQE posts, so bounding our window by the HIC's cap keeps
            // Hic::submit always legal.
            ++hicStalls_;
            return;
        }
        std::uint32_t qid = 0;
        if (!arbitrate(qid))
            return;
        fetchOne(qid);
    }
}

void
NvmeFrontEnd::fetchOne(std::uint32_t qid)
{
    QueuePair &q = queues_[qid];
    const std::uint32_t slot = q.sqHeadDev;
    q.sqHeadDev = (q.sqHeadDev + 1) % q.cfg.sqEntries;
    ++inflight_;
    ++fetched_;
    // The command fetch is a DMA of one SQE from the DRAM ring. The
    // bytes latch when the DMA starts: the head advance above may be
    // advertised (via another command's CQE) before the transfer-time
    // delay elapses, at which point the host is free to reuse the slot
    // — reading at completion time would see the new occupant.
    std::array<std::uint8_t, kSqeBytes> sqe;
    hic_.dram().read(q.sqBase + std::uint64_t(slot) * kSqeBytes, sqe);
    eq_.scheduleIn(hic_.dram().transferTime(kSqeBytes),
                   [this, qid, sqe] { execute(qid, sqe); },
                   "nvme sqe fetch");
}

void
NvmeFrontEnd::execute(std::uint32_t qid,
                      const std::array<std::uint8_t, kSqeBytes> &sqeArr)
{
    QueuePair &q = queues_[qid];
    const std::uint8_t *sqe = sqeArr.data();

    const bool write = sqe[0] == 1;
    const std::uint16_t cid = static_cast<std::uint16_t>(getLe(sqe + 2, 2));
    HostIo io;
    io.write = write;
    io.lba = getLe(sqe + 8, 8);
    io.sectors = static_cast<std::uint32_t>(getLe(sqe + 16, 4));
    io.dramAddr = getLe(sqe + 24, 8);

    io.onComplete = [this, qid, cid](bool ok) { postCqe(qid, cid, ok); };

    auto it = q.pending.find(cid);
    babol_assert(it != q.pending.end(),
                 "fetched cid %u with no host-side record", cid);
    obs::Hub::ScopedCtx ctx(it->second.span);
    hic_.submit(std::move(io));
}

void
NvmeFrontEnd::postCqe(std::uint32_t qid, std::uint16_t cid, bool ok)
{
    // The completion post is a DMA of one CQE into the DRAM ring.
    eq_.scheduleIn(
        hic_.dram().transferTime(kCqeBytes),
        [this, qid, cid, ok] {
            QueuePair &q = queues_[qid];
            babol_assert((q.cqTailDev + 1) % q.cfg.cqEntries !=
                             q.cqHeadHost,
                         "CQ %u overflow", qid);
            std::uint8_t cqe[kCqeBytes] = {};
            putLe(cqe, cid, 2);
            // NVMe: the SQ head *at CQE creation time*. Completions can
            // land out of fetch order, so stamping an older fetch-time
            // head here could regress the host's view and wedge a full
            // queue forever; the current head is monotonic.
            putLe(cqe + 2, q.sqHeadDev, 2);
            cqe[4] = ok ? 0 : 1;
            hic_.dram().write(
                q.cqBase + std::uint64_t(q.cqTailDev) * kCqeBytes, cqe);
            q.cqTailDev = (q.cqTailDev + 1) % q.cfg.cqEntries;

            babol_assert(inflight_ > 0, "CQE with no inflight command");
            --inflight_;

            ++q.unNotifiedCqes;
            if (q.unNotifiedCqes >= cfg_.coalesceThreshold) {
                raiseInterrupt(qid);
            } else if (!q.irqPending && !q.coalesceTimer.pending()) {
                q.coalesceTimer = eq_.scheduleIn(
                    cfg_.coalesceTimer,
                    [this, qid] {
                        if (queues_[qid].unNotifiedCqes > 0)
                            raiseInterrupt(qid);
                    },
                    "nvme coalesce timer");
            }
            pump();
        },
        "nvme cqe post");
}

void
NvmeFrontEnd::raiseInterrupt(std::uint32_t qid)
{
    QueuePair &q = queues_[qid];
    if (q.irqPending)
        return;
    q.irqPending = true;
    q.coalesceTimer.cancel();
    ++interrupts_;
    eq_.scheduleIn(cfg_.doorbellLatency,
                   [this, qid] { hostDrainCq(qid); }, "nvme irq");
}

void
NvmeFrontEnd::hostDrainCq(std::uint32_t qid)
{
    QueuePair &q = queues_[qid];
    q.irqPending = false;

    std::uint64_t batch = 0;
    while (q.cqHeadHost != q.cqTailDev) {
        std::uint8_t cqe[kCqeBytes];
        hic_.dram().read(
            q.cqBase + std::uint64_t(q.cqHeadHost) * kCqeBytes, cqe);
        q.cqHeadHost = (q.cqHeadHost + 1) % q.cfg.cqEntries;

        const std::uint16_t cid =
            static_cast<std::uint16_t>(getLe(cqe, 2));
        q.sqHeadHost = static_cast<std::uint32_t>(getLe(cqe + 2, 2));
        const bool ok = cqe[4] == 0;

        auto it = q.pending.find(cid);
        babol_assert(it != q.pending.end(),
                     "CQE for unknown cid %u on queue %u", cid, qid);
        PendingCmd pc = std::move(it->second);
        q.pending.erase(it);

        obs::trace().endSpan(pc.span, curTick());
        ++completed_;
        if (!ok)
            ++errors_;
        ++batch;
        if (pc.cb)
            pc.cb(ok);
    }
    if (batch > maxCoalesced_)
        maxCoalesced_ = batch;
    q.unNotifiedCqes = 0;

    // Ring the CQ head doorbell (the device needs no action beyond the
    // freed CQ slots, which cqHeadHost already published).
    ++cqDoorbells_;
    if (doorbellHook_)
        doorbellHook_(curTick(), qid, q.cqHeadHost, false);

    wakeSqWaiters(qid);
}

void
NvmeFrontEnd::wakeSqWaiters(std::uint32_t qid)
{
    // Wake every waiter: each retries and re-registers if still
    // blocked, so a waiter can never miss the slot another one
    // declined. Waiters registered during the wake run next time.
    std::deque<std::function<void()>> ready;
    ready.swap(queues_[qid].sqWaiters);
    std::deque<std::function<void()>> any;
    any.swap(anySqWaiters_);
    for (auto &fn : ready)
        fn();
    for (auto &fn : any)
        fn();
}

} // namespace babol::host::nvme
