#include "fio.hh"

namespace babol::host {

FioEngine::FioEngine(EventQueue &eq, const std::string &name,
                     ftl::PageFtl &ftl, FioConfig cfg)
    : SimObject(eq, name),
      ftl_(ftl),
      cfg_(cfg),
      rng_(cfg.seed),
      latencyUs_("io latency (us)"),
      metrics_(obs::metrics(), name)
{
    obsTrack_ = obs::interner().intern(name);
    lblRead_ = obs::interner().intern("io.read");
    lblWrite_ = obs::interner().intern("io.write");
    metrics_.value("completed", [this] { return completed_; });
    metrics_.value("errors", [this] { return errors_; });
    metrics_.distribution("latency_us", &latencyUs_);

    if (cfg_.extentPages == 0)
        cfg_.extentPages = ftl_.logicalPages();
    babol_assert(cfg_.extentPages <= ftl_.logicalPages(),
                 "extent larger than the FTL's logical space");
    babol_assert(cfg_.queueDepth >= 1, "queue depth must be >= 1");
}

std::uint64_t
FioEngine::nextLpn()
{
    if (cfg_.pattern == FioConfig::Pattern::Sequential) {
        std::uint64_t lpn = seqCursor_;
        seqCursor_ = (seqCursor_ + 1) % cfg_.extentPages;
        return lpn;
    }
    return rng_.uniform(0, cfg_.extentPages - 1);
}

void
FioEngine::start(std::function<void()> on_done)
{
    babol_assert(onDone_ == nullptr, "engine already running");
    onDone_ = std::move(on_done);
    issued_ = 0;
    completed_ = 0;
    errors_ = 0;
    inFlight_ = 0;
    seqCursor_ = 0;
    latencyUs_.reset();
    startTick_ = curTick();

    std::uint32_t initial = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.queueDepth, cfg_.totalIos));
    for (std::uint32_t slot = 0; slot < initial; ++slot)
        issueNext(slot);
}

void
FioEngine::issueNext(std::uint32_t slot)
{
    if (issued_ >= cfg_.totalIos)
        return;
    ++issued_;
    ++inFlight_;

    std::uint64_t lpn = nextLpn();
    std::uint64_t buf = cfg_.dramBase +
                        static_cast<std::uint64_t>(slot) * ftl_.pageBytes();
    Tick begin = curTick();

    // Root span of this IO (fio drives the FTL directly, so it plays
    // the host's role in the span tree).
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, cfg_.write ? lblWrite_ : lblRead_, begin,
        obs::currentCtx(), lpn);

    auto complete = [this, slot, begin, span](bool ok) {
        obs::trace().endSpan(span, curTick());
        --inFlight_;
        ++completed_;
        if (!ok)
            ++errors_;
        latencyUs_.sample(ticks::toUs(curTick() - begin));
        if (issued_ < cfg_.totalIos) {
            issueNext(slot);
        } else if (inFlight_ == 0) {
            endTick_ = curTick();
            auto done = std::move(onDone_);
            onDone_ = nullptr;
            if (done)
                done();
        }
    };

    obs::Hub::ScopedCtx ctx(span);
    if (cfg_.write)
        ftl_.writePage(lpn, buf, complete);
    else
        ftl_.readPage(lpn, buf, complete);
}

void
FioEngine::fill(std::uint64_t pages, std::function<void()> on_done)
{
    FioConfig saved = cfg_;
    cfg_.pattern = FioConfig::Pattern::Sequential;
    cfg_.write = true;
    cfg_.totalIos = pages;
    cfg_.extentPages = pages;
    start([this, saved, on_done = std::move(on_done)] {
        cfg_ = saved;
        on_done();
    });
}

double
FioEngine::bandwidthMBps() const
{
    return ::babol::bandwidthMBps(completed_ * ftl_.pageBytes(),
                                  endTick_ - startTick_);
}

double
FioEngine::iops() const
{
    Tick elapsed_ticks = endTick_ - startTick_;
    if (elapsed_ticks == 0)
        return 0.0;
    return static_cast<double>(completed_) / ticks::toSec(elapsed_ticks);
}

} // namespace babol::host
