/**
 * @file
 * Block-trace replay engine.
 *
 * Parses a Flashmon-style block trace — one I/O per line as
 * `<time_us> <R|W> <lba> <sectors>` — and replays it through the NVMe
 * front end, pacing submissions against *simulated* time: record i is
 * due at start + (t_i - t_0) * timeScale. Submission order is always
 * the file order, even when the device falls behind (a full submission
 * queue defers due records; they go out back-to-back, in order, as
 * slots free). That makes the replayed op sequence exactly the traced
 * one, which the span log verifies.
 *
 * The format is the replayable core of what capture-side tools like
 * Flashmon log at the block layer: a timestamp, the operation type, the
 * sector address, and the length.
 */

#ifndef BABOL_HOST_REPLAY_REPLAY_HH
#define BABOL_HOST_REPLAY_REPLAY_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "host/nvme/nvme.hh"

namespace babol::host::replay {

/** One traced block I/O. */
struct TraceOp
{
    Tick at = 0; //!< capture timestamp, relative to the trace start
    bool write = false;
    std::uint64_t lba = 0;
    std::uint32_t sectors = 1;
};

/** Parse a trace from @p in; @p what names the source in panics. */
std::vector<TraceOp> parseTrace(std::istream &in, const std::string &what);

/** Load and parse a trace file (panics with file:line on bad input). */
std::vector<TraceOp> loadTraceFile(const std::string &path);

struct ReplayConfig
{
    /** Stretch (>1) or compress (<1) the capture's inter-arrival gaps. */
    double timeScale = 1.0;

    /** DRAM base for the payload staging slots. */
    std::uint64_t dramBase = 0;

    /** Concurrent payload staging slots (bounds replay memory). */
    std::uint32_t slots = 64;

    /** Queue the replayed stream submits to (kAnyQueue = stripe). */
    std::uint32_t queue = nvme::NvmeFrontEnd::kAnyQueue;

    /** Tenant id stamped on replayed commands (for span tracks). */
    std::uint32_t tenant = 0;

    /** Wrap trace LBAs into the device's sector space (traces captured
     *  on a larger device replay against this one's extent). */
    bool wrapLba = true;
};

class ReplayEngine : public SimObject
{
  public:
    ReplayEngine(EventQueue &eq, const std::string &name,
                 nvme::NvmeFrontEnd &fe, std::vector<TraceOp> ops,
                 ReplayConfig cfg = {});

    /** Begin the replay; @p on_done fires after the last completion. */
    void start(std::function<void()> on_done);

    // --- Results ---
    std::uint64_t submittedIos() const { return submitCursor_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t errors() const { return errors_; }

    /** I/Os that went out after their paced due time because the
     *  submission queue was full (device-behind indicator). */
    std::uint64_t lateIos() const { return lateIos_; }

    const Distribution &latencyUs() const { return latencyUs_; }
    Tick elapsed() const { return endTick_ - startTick_; }
    double iops() const;

    /** Pack one record the way the submission markers' arg does. */
    static std::uint64_t
    encodeArg(bool write, std::uint32_t sectors, std::uint64_t lba)
    {
        return (write ? (std::uint64_t(1) << 63) : 0) |
               (static_cast<std::uint64_t>(sectors & 0x7fffff) << 40) |
               (lba & ((std::uint64_t(1) << 40) - 1));
    }

  private:
    void pushReady();

    nvme::NvmeFrontEnd &fe_;
    std::vector<TraceOp> ops_;
    ReplayConfig cfg_;

    std::function<void()> onDone_;
    std::vector<Tick> dueTicks_; //!< absolute paced due time per record
    Tick startTick_ = 0;
    Tick endTick_ = 0;
    std::size_t due_ = 0;          //!< records whose pace time arrived
    std::size_t submitCursor_ = 0; //!< next record to submit (file order)
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t lateIos_ = 0;
    bool waitingForSpace_ = false;
    std::uint64_t slotStride_ = 0;
    Distribution latencyUs_;

    /** Submission-order markers: one instant per record on this track,
     *  arg-encoding (write, sectors, lba) — tests diff this against the
     *  trace file to prove the replayed sequence is exact. */
    std::uint32_t track_ = 0;
    std::uint32_t lblSubmit_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::host::replay

#endif // BABOL_HOST_REPLAY_REPLAY_HH
