#include "replay.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace babol::host::replay {

namespace {

/** True for lines carrying no record: blank or `#` comments. */
bool
skippable(const std::string &line)
{
    for (char c : line) {
        if (c == '#')
            return true;
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

} // namespace

std::vector<TraceOp>
parseTrace(std::istream &in, const std::string &what)
{
    std::vector<TraceOp> ops;
    std::string line;
    std::size_t lineno = 0;
    double prev_us = -1.0;
    while (std::getline(in, line)) {
        ++lineno;
        if (skippable(line))
            continue;

        std::istringstream ls(line);
        double t_us = 0.0;
        std::string op;
        std::uint64_t lba = 0;
        std::uint64_t sectors = 0;
        if (!(ls >> t_us >> op >> lba >> sectors)) {
            fatal("%s:%zu: malformed trace record \"%s\" "
                        "(want: <time_us> <R|W> <lba> <sectors>)",
                        what.c_str(), lineno, line.c_str());
        }
        std::string trailing;
        if (ls >> trailing) {
            fatal("%s:%zu: trailing garbage \"%s\" after record",
                        what.c_str(), lineno, trailing.c_str());
        }
        if (op != "R" && op != "W" && op != "r" && op != "w") {
            fatal("%s:%zu: bad op \"%s\" (want R or W)",
                        what.c_str(), lineno, op.c_str());
        }
        if (t_us < 0.0 || t_us < prev_us) {
            fatal("%s:%zu: timestamps must be non-negative and "
                        "non-decreasing (%.3f after %.3f)",
                        what.c_str(), lineno, t_us, prev_us);
        }
        if (sectors == 0 || sectors > (1u << 20)) {
            fatal("%s:%zu: bad length %llu sectors", what.c_str(),
                        lineno,
                        static_cast<unsigned long long>(sectors));
        }
        prev_us = t_us;

        TraceOp rec;
        rec.at = static_cast<Tick>(t_us * ticks::perUs);
        rec.write = (op == "W" || op == "w");
        rec.lba = lba;
        rec.sectors = static_cast<std::uint32_t>(sectors);
        ops.push_back(rec);
    }
    if (ops.empty())
        fatal("%s: trace holds no records", what.c_str());
    return ops;
}

std::vector<TraceOp>
loadTraceFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open trace file %s", path.c_str());
    return parseTrace(f, path);
}

ReplayEngine::ReplayEngine(EventQueue &eq, const std::string &name,
                           nvme::NvmeFrontEnd &fe,
                           std::vector<TraceOp> ops, ReplayConfig cfg)
    : SimObject(eq, name), fe_(fe), ops_(std::move(ops)), cfg_(cfg),
      latencyUs_(name + ".latency_us"), metrics_(obs::metrics(), name)
{
    babol_assert(!ops_.empty(), "replaying an empty trace");
    babol_assert(cfg_.slots >= 1, "replay needs a staging slot");
    babol_assert(cfg_.timeScale > 0.0, "non-positive replay time scale");

    // One staging slot covers the largest record in the trace.
    std::uint32_t max_sectors = 1;
    for (const TraceOp &op : ops_)
        max_sectors = std::max(max_sectors, op.sectors);
    slotStride_ = static_cast<std::uint64_t>(max_sectors) *
                  fe_.hic().sectorBytes();
    babol_assert(cfg_.dramBase + slotStride_ * cfg_.slots <=
                     fe_.hic().dram().size(),
                 "replay staging slots overflow DRAM");

    track_ = obs::interner().intern(name);
    lblSubmit_ = obs::interner().intern("replay.submit");

    metrics_.value("submitted", [this] { return submitCursor_; });
    metrics_.value("completed", [this] { return completed_; });
    metrics_.value("errors", [this] { return errors_; });
    metrics_.value("late_ios", [this] { return lateIos_; });
    metrics_.distribution("latency_us", &latencyUs_);
}

double
ReplayEngine::iops() const
{
    Tick el = elapsed();
    if (el == 0)
        return 0.0;
    return static_cast<double>(completed_) / ticks::toSec(el);
}

void
ReplayEngine::start(std::function<void()> on_done)
{
    onDone_ = std::move(on_done);
    startTick_ = curTick();

    // Arm one pace event per record up front: record i becomes *due* at
    // start + scaled gap from the trace head. Due records submit in
    // strict file order; a full SQ defers them (late), never reorders.
    const Tick t0 = ops_.front().at;
    dueTicks_.reserve(ops_.size());
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        Tick delay = static_cast<Tick>(
            static_cast<double>(ops_[i].at - t0) * cfg_.timeScale);
        dueTicks_.push_back(startTick_ + delay);
        scheduleIn(delay,
                   [this] {
                       ++due_;
                       pushReady();
                   },
                   "replay pace");
    }
}

void
ReplayEngine::pushReady()
{
    while (submitCursor_ < due_) {
        const TraceOp &op = ops_[submitCursor_];
        const std::size_t idx = submitCursor_;

        nvme::NvmeCommand cmd;
        cmd.write = op.write;
        const std::uint64_t total = fe_.hic().totalSectors();
        cmd.slba = cfg_.wrapLba ? op.lba % total : op.lba;
        cmd.sectors = op.sectors;
        if (cmd.slba + cmd.sectors > total) {
            if (!cfg_.wrapLba)
                fatal("trace record %zu beyond device end", idx);
            cmd.sectors = static_cast<std::uint32_t>(total - cmd.slba);
        }
        cmd.prp = cfg_.dramBase + (idx % cfg_.slots) * slotStride_;
        cmd.tenant = cfg_.tenant;

        const Tick submit_tick = curTick();
        bool ok = fe_.trySubmit(
            cfg_.queue, cmd, [this, submit_tick](bool io_ok) {
                if (!io_ok)
                    ++errors_;
                ++completed_;
                latencyUs_.sample(ticks::toUs(curTick() - submit_tick));
                if (completed_ == ops_.size()) {
                    endTick_ = curTick();
                    if (onDone_)
                        onDone_();
                }
            });
        if (!ok) {
            // SQ full: park until the CQ drain frees slots, keeping
            // head-of-line order.
            if (!waitingForSpace_) {
                waitingForSpace_ = true;
                fe_.onSqSpace(cfg_.queue, [this] {
                    waitingForSpace_ = false;
                    pushReady();
                });
            }
            return;
        }
        obs::trace().instant(track_, lblSubmit_, curTick(), obs::kNoSpan,
                             encodeArg(cmd.write, cmd.sectors, cmd.slba));
        if (curTick() > dueTicks_[idx])
            ++lateIos_;
        ++submitCursor_;
    }
}

} // namespace babol::host::replay
