/**
 * @file
 * A fio-like host workload engine.
 *
 * Drives the FTL the way the paper drives the Cosmos+ with fio (§VI-C):
 * sequential or random page-sized I/O at a configurable queue depth,
 * reporting bandwidth and latency percentiles. Also provides the
 * preconditioning fill that initializes the device with data.
 */

#ifndef BABOL_HOST_FIO_HH
#define BABOL_HOST_FIO_HH

#include <functional>

#include "ftl/ftl.hh"
#include "obs/hub.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace babol::host {

struct FioConfig
{
    enum class Pattern { Sequential, Random };

    Pattern pattern = Pattern::Sequential;
    bool write = false;

    /** Outstanding I/Os kept in flight. */
    std::uint32_t queueDepth = 32;

    /** Logical pages touched (the working extent starts at LPN 0). */
    std::uint64_t extentPages = 0; //!< 0 = the FTL's whole space

    /** Total I/Os to issue. */
    std::uint64_t totalIos = 1024;

    std::uint64_t seed = 42;

    /** DRAM base for the per-slot staging buffers. */
    std::uint64_t dramBase = 0;
};

class FioEngine : public SimObject
{
  public:
    FioEngine(EventQueue &eq, const std::string &name, ftl::PageFtl &ftl,
              FioConfig cfg);

    /** Kick off the run; @p on_done fires after the last completion. */
    void start(std::function<void()> on_done);

    /**
     * Sequentially write LPNs [0, pages) to precondition the device
     * (queue depth applies); @p on_done fires when the fill completes.
     */
    void fill(std::uint64_t pages, std::function<void()> on_done);

    // --- Results ---
    double bandwidthMBps() const;
    double iops() const;
    const Distribution &latencyUs() const { return latencyUs_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t errors() const { return errors_; }
    Tick elapsed() const { return endTick_ - startTick_; }

  private:
    void issueNext(std::uint32_t slot);
    std::uint64_t nextLpn();

    ftl::PageFtl &ftl_;
    FioConfig cfg_;
    Rng rng_;

    std::function<void()> onDone_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t seqCursor_ = 0;
    std::uint32_t inFlight_ = 0;
    Tick startTick_ = 0;
    Tick endTick_ = 0;
    Distribution latencyUs_;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblRead_ = 0;
    std::uint32_t lblWrite_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::host

#endif // BABOL_HOST_FIO_HH
