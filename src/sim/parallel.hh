/**
 * @file
 * Conservative-lookahead parallel discrete-event engine over per-shard
 * EventQueues.
 *
 * The simulated system is partitioned into a FIXED set of shards (for an
 * SSD: one host shard for HIC/FTL/workload plus one shard per flash
 * channel). Worker threads multiplex shards — shard s runs on thread
 * (s mod T) — so the shard topology, and with it every window boundary,
 * message ordering, and merge order, is a function of the model alone,
 * never of the thread count. That is what makes runs byte-reproducible
 * at any T, and a T=1 run equivalent to the classic single-queue engine.
 *
 * Execution alternates two barrier-separated phases per window:
 *
 *   sync phase:  each thread drains the inbound links of its shards
 *                (scheduling delivered messages into the shard queue)
 *                and reports the shard's next event time. The barrier
 *                completion computes the global bound B = min over
 *                shards and the window edge  limit = B + L - 1,  where
 *                L is the lookahead.
 *   run phase:   each shard independently fires every event with
 *                when <= limit, then arrives at the barrier again.
 *
 * Cross-shard sends (ParallelEngine::post) must carry a delivery time at
 * least L past the sender's clock; since the sender's clock is <= limit
 * = B + L - 1 while running, every message lands at or after the next
 * window's bound and can never arrive in a shard's past. L is derived
 * from the modeled minimum cross-shard latency (for BABOL: the channel
 * interconnect/dispatch hop floor — CE setup + command/address cycles +
 * tWB; see ssd/lookahead.hh).
 *
 * Error handling: a SimPanic (or any exception) thrown inside a shard is
 * captured, every thread still reaches the barrier (no deadlock), the
 * engine stops at the window edge, and run() rethrows the exception of
 * the lowest-numbered failing shard on the calling thread — again
 * deterministic at any thread count.
 */

#ifndef BABOL_SIM_PARALLEL_HH
#define BABOL_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "event_queue.hh"
#include "spsc_ring.hh"
#include "types.hh"

namespace babol::sim {

class ParallelEngine
{
  public:
    using Fn = std::function<void()>;

    /**
     * @param shards    number of shards (fixed for the engine's lifetime)
     * @param lookahead minimum cross-shard latency L in ticks (> 0)
     */
    ParallelEngine(std::uint32_t shards, Tick lookahead);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    std::uint32_t shardCount() const { return shardCount_; }
    Tick lookahead() const { return lookahead_; }

    /** The shard's private event queue. */
    EventQueue &queue(std::uint32_t shard);

    /**
     * Hooks run around every bounded queue.run() of @p shard, on the
     * worker thread that owns it. Used to install per-shard
     * observability / audit contexts.
     */
    void setShardHooks(std::uint32_t shard, Fn enter, Fn leave);

    /**
     * Run @p fn with all worker threads quiesced at the window barrier,
     * every @p windows windows and once after the final window. Used
     * for deterministic epoch merges of per-shard trace buffers.
     */
    void setEpochHook(std::uint64_t windows, Fn fn);

    /**
     * Send @p fn to run on shard @p to at absolute time @p when. Must
     * be called from code executing on shard @p from (during its run
     * phase, or from the calling thread before run()); @p when must be
     * at least lookahead() past queue(from).now().
     */
    void post(std::uint32_t from, std::uint32_t to, Tick when, Fn fn);

    /**
     * Run every shard with @p threads worker threads (clamped to the
     * shard count; the calling thread participates) until all queues
     * drain or simulated time would pass @p until.
     *
     * @return total events fired across all shards.
     */
    std::uint64_t run(std::uint32_t threads, Tick until = kMaxTick);

    /** Windows executed by the last / current run(). */
    std::uint64_t windowCount() const { return windows_; }

    /** Messages delivered across shard links (all links, lifetime). */
    std::uint64_t crossShardMessages() const { return messages_; }

    /**
     * Deepest overflow backlog any cross-shard link ever reached: how
     * far past its lock-free ring a link spilled into the mutex-guarded
     * overflow list. Zero means every message fit the rings; sustained
     * positives mean the rings are undersized for the traffic. Call at
     * quiesced points (between runs, or from an epoch hook).
     */
    std::uint64_t maxLinkOverflowHighWater() const;

  private:
    struct Msg
    {
        Tick when = 0;
        Fn fn;
    };

    struct ShardState
    {
        EventQueue queue;
        Fn enter, leave;
        Tick nextTime = kMaxTick;
        std::exception_ptr error;
    };

    ShardLink<Msg> &link(std::uint32_t from, std::uint32_t to);
    void drainInbox(std::uint32_t shard);
    void workerLoop(std::uint32_t tid, std::uint32_t threads,
                    std::uint64_t &fired);
    void onBarrier();

    std::uint32_t shardCount_;
    Tick lookahead_;
    std::vector<std::unique_ptr<ShardState>> shards_;
    std::vector<std::unique_ptr<ShardLink<Msg>>> links_; // from*K + to

    Fn epochHook_;
    std::uint64_t epochEvery_ = 0;

    // Window-loop state: written only by the barrier completion (or
    // before/after the run), read by workers after the barrier.
    Tick until_ = kMaxTick;
    Tick limit_ = 0;
    bool done_ = false;
    int phase_ = 0;
    std::uint64_t windows_ = 0;
    std::atomic<bool> abort_{false};
    std::atomic<std::uint64_t> messages_{0};
};

} // namespace babol::sim

#endif // BABOL_SIM_PARALLEL_HH
