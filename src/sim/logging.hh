/**
 * @file
 * Logging and error-reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 *  - panic():  a simulator bug; should never happen regardless of input.
 *  - fatal():  the user's fault (bad configuration); clean exit.
 *  - warn():   functionality works but may be approximate.
 *  - inform(): routine status output.
 *
 * A lightweight printf-style formatter (strfmt) backs all of them; the
 * host toolchain (GCC 12) predates std::format, so we provide our own.
 */

#ifndef BABOL_SIM_LOGGING_HH
#define BABOL_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace babol {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list args);

/** Thrown by panic(); lets tests assert that invariants fire. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &what) : std::logic_error(what) {}
};

/** Thrown by fatal(); a user/configuration error. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &what) : std::runtime_error(what) {}
};

/** Report a simulator bug and abort via SimPanic. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error via SimFatal. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Routine status message on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define babol_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::babol::panic("assertion '%s' failed at %s:%d: %s", #cond,     \
                           __FILE__, __LINE__,                              \
                           ::babol::strfmt(__VA_ARGS__).c_str());           \
        }                                                                   \
    } while (0)

/**
 * Debug trace support. Trace output is off by default and enabled per
 * named flag (e.g., "Bus", "Lun", "Coro") via DebugFlags::enable() or the
 * BABOL_DEBUG environment variable (comma-separated flag names, or "All").
 */
class DebugFlags
{
  public:
    /** Enable one flag by name. */
    static void enable(const std::string &flag);
    /** Disable one flag by name. */
    static void disable(const std::string &flag);
    /** True when the flag (or "All") is enabled. */
    static bool enabled(const std::string &flag);
    /** Remove all enabled flags. */
    static void clearAll();
};

/** Emit a trace line when the named debug flag is enabled. */
void dtrace(const char *flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace babol

#endif // BABOL_SIM_LOGGING_HH
