#include "stats.hh"

namespace babol {

double
Distribution::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void
Distribution::decimate()
{
    // Keep every other retained sample and double the stride, so the kept
    // set remains a uniform subsample of the full stream.
    std::vector<double> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2)
        kept.push_back(samples_[i]);
    samples_ = std::move(kept);
    stride_ *= 2;
}

} // namespace babol
