#include "stats.hh"

#include <cmath>

namespace babol {

std::size_t
LogHistogram::indexOf(double v)
{
    if (!(v > 0.0))
        return 0; // non-positive (and NaN) underflow bucket
    int exp = 0;
    double m = std::frexp(v, &exp); // v = m * 2^exp, m in [0.5, 1)
    int e = exp - 1;                // v = (2m) * 2^e, 2m in [1, 2)
    if (e < kMinExp)
        return 0;
    if (e >= kMaxExp)
        return kBuckets - 1; // overflow bucket
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 +
           static_cast<std::size_t>(e - kMinExp) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

double
LogHistogram::midpointOf(std::size_t index)
{
    if (index == 0)
        return 0.0;
    if (index >= kBuckets - 1)
        return std::ldexp(1.0, kMaxExp);
    const std::size_t lin = index - 1;
    const int e = kMinExp + static_cast<int>(lin / kSubBuckets);
    const int sub = static_cast<int>(lin % kSubBuckets);
    // Bucket spans [1 + sub/S, 1 + (sub+1)/S) * 2^e; use the midpoint.
    double lo = 1.0 + static_cast<double>(sub) / kSubBuckets;
    double hi = 1.0 + static_cast<double>(sub + 1) / kSubBuckets;
    return std::ldexp((lo + hi) / 2.0, e);
}

double
LogHistogram::percentile(double p) const
{
    const std::uint64_t n = total();
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Same rank convention as Distribution::percentile: p of (n-1).
    const auto rank = static_cast<std::uint64_t>(
        (p / 100.0) * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen > rank)
            return midpointOf(i);
    }
    return midpointOf(kBuckets - 1);
}

double
Distribution::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void
Distribution::decimate()
{
    // Keep every other retained sample and double the stride, so the kept
    // set remains a uniform subsample of the full stream.
    std::vector<double> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2)
        kept.push_back(samples_[i]);
    samples_ = std::move(kept);
    stride_ *= 2;
}

} // namespace babol
