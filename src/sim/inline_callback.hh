/**
 * @file
 * A small-buffer-optimized callable slot for pooled event records.
 *
 * The event kernel stores one callback per record. Almost every lambda
 * scheduled in the simulator captures a couple of pointers and a few
 * scalars, so the common case fits in a fixed inline buffer and never
 * touches the heap; oversized captures fall back to a single allocation.
 * Records live at stable addresses inside the pool and are recycled in
 * place, so the slot deliberately supports neither copy nor move — only
 * emplace / invoke / reset.
 */

#ifndef BABOL_SIM_INLINE_CALLBACK_HH
#define BABOL_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace babol {

class InlineCallback
{
  public:
    /**
     * Sized so the largest hot-path capture in the tree — the bus
     * segment-completion lambda (a shared_ptr plus a std::function) —
     * still lands inline.
     */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() = default;
    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;
    ~InlineCallback() { reset(); }

    /**
     * Install @p fn into the slot. @return true when the callable was
     * stored inline (no heap allocation).
     */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "event callbacks take no arguments and return void");
        reset();
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage_.buf))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            outlined_ = false;
            return true;
        } else {
            storage_.ptr = new Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
            outlined_ = true;
            return false;
        }
    }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset()
    {
        if (destroy_)
            destroy_(target());
        invoke_ = nullptr;
        destroy_ = nullptr;
        outlined_ = false;
    }

    bool engaged() const { return invoke_ != nullptr; }
    bool outlined() const { return outlined_; }

    void operator()() { invoke_(target()); }

  private:
    void *
    target()
    {
        return outlined_ ? storage_.ptr : static_cast<void *>(storage_.buf);
    }

    union Storage
    {
        alignas(alignof(std::max_align_t)) unsigned char buf[kInlineBytes];
        void *ptr;
    };

    Storage storage_{};
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    bool outlined_ = false;
};

} // namespace babol

#endif // BABOL_SIM_INLINE_CALLBACK_HH
