#include "fleet.hh"

#include <exception>
#include <thread>
#include <vector>

#include "logging.hh"

namespace babol::sim {

void
FleetEngine::run(std::size_t count, std::uint32_t threads,
                 const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;
    threads = std::max<std::uint32_t>(
        1, std::min<std::uint64_t>(threads, count));

    std::vector<std::exception_ptr> errors(count);

    auto body = [&](std::uint32_t tid) {
        for (std::size_t m = tid; m < count; m += threads) {
            try {
                job(m);
            } catch (...) {
                errors[m] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (std::uint32_t t = 1; t < threads; ++t)
        workers.emplace_back(body, t);
    body(0);
    for (auto &w : workers)
        w.join();

    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

std::uint64_t
FleetEngine::memberSeed(std::uint64_t base, std::size_t member)
{
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (member + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace babol::sim
