/**
 * @file
 * Single-producer / single-consumer bounded ring for cross-shard event
 * exchange in the sharded engine.
 *
 * Each (sender shard, receiver shard) pair owns one ring, so every ring
 * has exactly one producer thread and one consumer thread by
 * construction. push/pop use acquire/release on the head/tail indices —
 * no locks on the fast path. The window-barrier protocol additionally
 * separates the push phase from the pop phase, so a full ring can fall
 * back to a mutex-guarded overflow vector (ShardLink) without ever
 * reordering messages: once a sender overflows inside a window, all its
 * later messages overflow too, and the consumer drains ring-then-
 * overflow, preserving per-link FIFO order.
 */

#ifndef BABOL_SIM_SPSC_RING_HH
#define BABOL_SIM_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "logging.hh"

namespace babol::sim {

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity = 1024)
        : buf_(capacity), mask_(capacity - 1)
    {
        babol_assert(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                     "SpscRing capacity must be a power of two, got %zu",
                     capacity);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return buf_.size(); }

    /** Producer side. @return false when the ring is full. */
    bool
    push(T &&v)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        const std::size_t t = tail_.load(std::memory_order_acquire);
        if (h - t == buf_.size())
            return false;
        buf_[h & mask_] = std::move(v);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. @return false when the ring is empty. */
    bool
    pop(T &out)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        const std::size_t h = head_.load(std::memory_order_acquire);
        if (t == h)
            return false;
        out = std::move(buf_[t & mask_]);
        buf_[t & mask_] = T{}; // release captured resources eagerly
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Approximate size as seen by the consumer. */
    std::size_t
    size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

  private:
    std::vector<T> buf_;
    std::size_t mask_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

/**
 * One directed cross-shard message link: an SpscRing fronting a
 * mutex-guarded overflow vector so a burst larger than the ring can
 * never deadlock the window barrier. FIFO order per link is preserved
 * (see file comment).
 */
template <typename T>
class ShardLink
{
  public:
    explicit ShardLink(std::size_t ringCapacity = 1024)
        : ring_(ringCapacity)
    {}

    /** Producer side (sender shard's thread). */
    void
    post(T &&v)
    {
        if (overflowed_.load(std::memory_order_relaxed) == 0 &&
            ring_.push(std::move(v)))
            return;
        std::lock_guard<std::mutex> lk(mu_);
        overflow_.push_back(std::move(v));
        overflowed_.store(overflow_.size(), std::memory_order_relaxed);
        if (overflow_.size() > overflowHighWater_)
            overflowHighWater_ = overflow_.size();
    }

    /** Consumer side: deliver every queued message in FIFO order. */
    template <typename F>
    void
    drain(F &&deliver)
    {
        T v;
        while (ring_.pop(v))
            deliver(std::move(v));
        if (overflowed_.load(std::memory_order_relaxed) != 0) {
            std::lock_guard<std::mutex> lk(mu_);
            for (auto &o : overflow_)
                deliver(std::move(o));
            overflow_.clear();
            overflowed_.store(0, std::memory_order_relaxed);
        }
    }

    std::uint64_t
    overflowHighWater() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return overflowHighWater_;
    }

  private:
    SpscRing<T> ring_;
    mutable std::mutex mu_;
    std::vector<T> overflow_;
    std::uint64_t overflowHighWater_ = 0;
    std::atomic<std::size_t> overflowed_{0};
};

} // namespace babol::sim

#endif // BABOL_SIM_SPSC_RING_HH
