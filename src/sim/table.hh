/**
 * @file
 * ASCII/CSV table printing used by the benchmark harnesses to emit the
 * paper's tables and figure series in a uniform format.
 */

#ifndef BABOL_SIM_TABLE_HH
#define BABOL_SIM_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace babol {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace babol

#endif // BABOL_SIM_TABLE_HH
