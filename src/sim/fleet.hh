/**
 * @file
 * Fleet mode: N fully independent simulated devices x M workload
 * streams in one process — the embarrassingly parallel tier of the
 * two-tier engine (the other tier being the channel-sharded
 * ParallelEngine).
 *
 * Members are assigned to OS threads by the fixed mapping
 * member m -> thread (m mod T), and every member on a thread runs
 * sequentially to completion, so per-member results are independent of
 * the thread count. Isolation is the member job's responsibility: build
 * the whole member (queue, device, workload) inside the job, inside a
 * scoped obs::ExecContext with a private metrics registry, so nothing
 * but the global label interner (thread-safe) is shared.
 */

#ifndef BABOL_SIM_FLEET_HH
#define BABOL_SIM_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace babol::sim {

class FleetEngine
{
  public:
    /**
     * Run jobs [0, count) over @p threads OS threads (clamped to
     * count; the calling thread participates). @p job receives the
     * member index; exceptions are captured and the one from the
     * lowest-numbered failing member is rethrown on the calling
     * thread after every member finished or failed.
     */
    static void run(std::size_t count, std::uint32_t threads,
                    const std::function<void(std::size_t)> &job);

    /**
     * Deterministic per-member seed: a fixed splitmix64 of the base
     * seed and member index, so member streams are decorrelated and
     * independent of thread count or launch order.
     */
    static std::uint64_t memberSeed(std::uint64_t base, std::size_t member);
};

} // namespace babol::sim

#endif // BABOL_SIM_FLEET_HH
