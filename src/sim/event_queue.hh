/**
 * @file
 * The discrete-event kernel at the heart of the BABOL simulator.
 *
 * Every hardware and software actor in the reproduction — LUN busy timers,
 * bus segment completions, DMA transfers, CPU work items — is expressed as
 * an event scheduled on a single EventQueue. Events at the same tick fire
 * in scheduling order (FIFO by sequence number), which keeps runs fully
 * deterministic.
 *
 * The kernel is built for near-zero steady-state allocation:
 *
 *  - Event records live in a chunked pool and are recycled through a free
 *    list; a handle is a cheap {index, generation} pair, so cancellation
 *    is O(1) and a stale handle can never touch a recycled record.
 *  - Callbacks are stored in a small-buffer-optimized slot
 *    (InlineCallback): the common capture sizes in bus.cc / lun.cc /
 *    hic.cc / coro_runtime.hh fit inline and never allocate.
 *  - A near-future timing wheel (calendar-queue style) fronts a binary
 *    heap. Short delays — ONFI bus cycles, μFSM segment timing — hit an
 *    O(1) bucket push; far-future events (tPROG, tBERS) overflow into
 *    the heap. Buckets are merged through a tiny "ready" heap keyed by
 *    (when, seq), which preserves the exact global firing order the old
 *    single-heap kernel had.
 *
 * Pool and routing statistics are exported through the stats.hh Counter
 * machinery (see poolStats()).
 */

#ifndef BABOL_SIM_EVENT_QUEUE_HH
#define BABOL_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "inline_callback.hh"
#include "logging.hh"
#include "stats.hh"
#include "types.hh"

namespace babol {

class EventQueue;

/**
 * Handle to a scheduled event; allows cancellation. Default-constructed
 * handles are inert. Handles stay valid (but inert) after the event fires
 * or its record is recycled: the generation check makes stale use a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True when the event is still pending (not fired, not cancelled). */
    bool pending() const;

    /** Cancel the event if it is still pending. */
    void cancel();

    /** Scheduled firing time; kMaxTick when inert or no longer pending. */
    Tick when() const;

  private:
    friend class EventQueue;

    EventHandle(EventQueue *eq, std::uint32_t idx, std::uint32_t gen)
        : eq_(eq), idx_(idx), gen_(gen)
    {}

    EventQueue *eq_ = nullptr;
    std::uint32_t idx_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * A deterministic priority queue of timed callbacks.
 *
 * All simulated entities share one queue; the constructor of each
 * SimObject receives a reference. Time never moves backwards: scheduling
 * in the past is a panic (a simulator bug by definition).
 */
class EventQueue
{
  public:
    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when. */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, const char *what = "")
    {
        if (when < now_) {
            panic("scheduling event '%s' in the past (%llu < %llu)", what,
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
        }
        const std::uint32_t idx = allocRecord();
        Record &rec = record(idx);
        rec.when = when;
        rec.seq = nextSeq_++;
        rec.state = Record::Pending;
        if (rec.fn.emplace(std::forward<F>(fn)))
            statInlineCb_.inc();
        else
            statOutlineCb_.inc();
        ++scheduledCount_;
        ++livePending_;
        insertEntry(Entry{when, rec.seq, idx, rec.gen});
        return EventHandle(this, idx, rec.gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn, const char *what = "")
    {
        return schedule(now_ + delay, std::forward<F>(fn), what);
    }

    /** True when no runnable events remain. */
    bool empty() const { return livePending_ == 0; }

    /** Number of events scheduled and not cancelled. O(1) and exact. */
    std::size_t pendingCount() const { return livePending_; }

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit (events at exactly @p limit still run).
     *
     * @return the number of events fired.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Fire at most one event. @return true if an event fired. */
    bool step();

    /**
     * Firing time of the earliest runnable event, or kMaxTick when the
     * queue is drained. Non-const because the peek may lazily skim
     * cancelled residue off the merge heaps; it never advances time.
     * The sharded engine uses this to compute the conservative window
     * bound across shards.
     */
    Tick nextEventTime();

    /** Total number of events ever scheduled (for stats/tests). */
    std::uint64_t scheduledCount() const { return scheduledCount_; }

    /** Total number of events ever fired. */
    std::uint64_t firedCount() const { return firedCount_; }

    /** Snapshot of the kernel's pool/routing statistics. */
    struct PoolStats
    {
        std::uint64_t poolCapacity = 0;   //!< records allocated in chunks
        std::uint64_t poolLive = 0;       //!< records currently checked out
        std::uint64_t poolHighWater = 0;  //!< max simultaneously live
        std::uint64_t inlineCallbacks = 0;
        std::uint64_t outlineCallbacks = 0; //!< capture too big: heap
        std::uint64_t wheelInserts = 0;
        std::uint64_t heapInserts = 0;    //!< beyond the wheel horizon
        std::uint64_t readyInserts = 0;   //!< into the already-drained window
        std::uint64_t compactions = 0;
        std::uint64_t cancelledPending = 0; //!< lazily-cancelled residue
    };

    PoolStats poolStats() const;

    /**
     * Test/trace hook invoked as (when, seq) for every fired event.
     * Used by the determinism regression tests to compare tick-for-tick
     * firing order across runs. Costs one predicted branch when unset.
     */
    void
    setFireHook(std::function<void(Tick, std::uint64_t)> hook)
    {
        fireHook_ = std::move(hook);
    }

  private:
    friend class EventHandle;

    struct Record
    {
        enum State : std::uint8_t { Free, Pending, Firing, Cancelled };

        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        std::uint32_t next = kNilIndex; //!< free-list / bucket-list link
        State state = Free;
        InlineCallback fn;
    };

    /** A (when, seq, record) triple living in one of the two heaps. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;
    static constexpr std::uint32_t kChunkShift = 8; //!< 256 records/chunk
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

    /** Wheel geometry: 8192 buckets of 4096 ticks (~4.1 ns) each give a
     *  ~33.6 µs horizon — bus cycles, DMA bursts and tR land in the
     *  wheel; tPROG/tBERS overflow into the far heap. */
    static constexpr std::uint32_t kBucketShift = 12;
    static constexpr Tick kBucketTicks = Tick(1) << kBucketShift;
    static constexpr std::uint32_t kWheelShift = 13;
    static constexpr std::uint32_t kWheelBuckets = 1u << kWheelShift;

    Record &
    record(std::uint32_t idx)
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    const Record &
    record(std::uint32_t idx) const
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    bool
    validIndex(std::uint32_t idx) const
    {
        return (idx >> kChunkShift) < chunks_.size();
    }

    std::uint32_t
    allocRecord()
    {
        if (freeHead_ == kNilIndex)
            growPool();
        const std::uint32_t idx = freeHead_;
        Record &rec = record(idx);
        freeHead_ = rec.next;
        rec.next = kNilIndex;
        ++poolLive_;
        if (poolLive_ > poolHighWater_)
            poolHighWater_ = poolLive_;
        return idx;
    }

    void releaseRecord(std::uint32_t idx);
    void growPool();

    /** Route a freshly scheduled entry to ready heap, wheel, or far heap. */
    void
    insertEntry(const Entry &e)
    {
        const std::uint64_t bucket = e.when >> kBucketShift;
        if (bucket < nextBucket_) {
            // Lands inside the already-drained window: merge straight
            // into the ready heap so it still fires in (when, seq) order.
            ready_.push_back(e);
            std::push_heap(ready_.begin(), ready_.end(), EntryLater{});
            statReady_.inc();
        } else if (bucket - nextBucket_ < kWheelBuckets) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(bucket) & (kWheelBuckets - 1);
            Record &rec = record(e.idx);
            rec.next = wheelHead_[slot];
            wheelHead_[slot] = e.idx;
            wheelBitmap_[slot >> 6] |= std::uint64_t(1) << (slot & 63);
            ++wheelCount_;
            statWheel_.inc();
        } else {
            overflow_.push_back(e);
            std::push_heap(overflow_.begin(), overflow_.end(), EntryLater{});
            statHeap_.inc();
        }
    }

    bool primeReady();
    std::int64_t scanWheelRange(std::uint32_t from, std::uint32_t to) const;
    const Entry *peekLive();
    void popReadyTop();
    void maybeCompact();
    void compact();

    // --- Handle plumbing (generation-checked) ---

    bool
    handlePending(std::uint32_t idx, std::uint32_t gen) const
    {
        if (!validIndex(idx))
            return false;
        const Record &rec = record(idx);
        return rec.gen == gen && rec.state == Record::Pending;
    }

    Tick
    handleWhen(std::uint32_t idx, std::uint32_t gen) const
    {
        return handlePending(idx, gen) ? record(idx).when : kMaxTick;
    }

    void
    handleCancel(std::uint32_t idx, std::uint32_t gen)
    {
        if (!handlePending(idx, gen))
            return;
        Record &rec = record(idx);
        rec.state = Record::Cancelled;
        rec.fn.reset(); // free captured resources eagerly
        --livePending_;
        ++cancelledPending_;
        maybeCompact();
    }

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t scheduledCount_ = 0;
    std::uint64_t firedCount_ = 0;
    std::size_t livePending_ = 0;
    std::size_t cancelledPending_ = 0;

    // Record pool: chunked so records never move, free list threaded
    // through Record::next.
    std::vector<std::unique_ptr<Record[]>> chunks_;
    std::uint32_t freeHead_ = kNilIndex;
    std::uint64_t poolLive_ = 0;
    std::uint64_t poolHighWater_ = 0;

    // Timing wheel over bucket indices [nextBucket_, nextBucket_ + W).
    // All buckets before nextBucket_ have been merged into ready_.
    std::vector<std::uint32_t> wheelHead_;
    std::vector<std::uint64_t> wheelBitmap_;
    std::uint64_t nextBucket_ = 0;
    std::size_t wheelCount_ = 0;

    // Near merge heap (current window) and far overflow heap, both
    // ordered by (when, seq) via EntryLater.
    std::vector<Entry> ready_;
    std::vector<Entry> overflow_;

    Counter statInlineCb_{"eq.callback.inline"};
    Counter statOutlineCb_{"eq.callback.outline"};
    Counter statWheel_{"eq.insert.wheel"};
    Counter statHeap_{"eq.insert.heap"};
    Counter statReady_{"eq.insert.ready"};
    Counter statCompact_{"eq.compactions"};

    std::function<void(Tick, std::uint64_t)> fireHook_;
};

inline bool
EventHandle::pending() const
{
    return eq_ && eq_->handlePending(idx_, gen_);
}

inline void
EventHandle::cancel()
{
    if (eq_)
        eq_->handleCancel(idx_, gen_);
}

inline Tick
EventHandle::when() const
{
    return eq_ ? eq_->handleWhen(idx_, gen_) : kMaxTick;
}

} // namespace babol

#endif // BABOL_SIM_EVENT_QUEUE_HH
