/**
 * @file
 * The discrete-event kernel at the heart of the BABOL simulator.
 *
 * Every hardware and software actor in the reproduction — LUN busy timers,
 * bus segment completions, DMA transfers, CPU work items — is expressed as
 * an event scheduled on a single EventQueue. Events at the same tick fire
 * in scheduling order (FIFO), which keeps runs fully deterministic.
 */

#ifndef BABOL_SIM_EVENT_QUEUE_HH
#define BABOL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace babol {

/**
 * Handle to a scheduled event; allows cancellation. Default-constructed
 * handles are inert. Handles stay valid (but inert) after the event fires.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True when the event is still pending (not fired, not cancelled). */
    bool pending() const { return rec_ && !rec_->cancelled && !rec_->fired; }

    /** Cancel the event if it is still pending. */
    void
    cancel()
    {
        if (rec_)
            rec_->cancelled = true;
    }

    /** Scheduled firing time; kMaxTick when inert. */
    Tick when() const { return rec_ ? rec_->when : kMaxTick; }

  private:
    friend class EventQueue;

    struct Record
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec))
    {}

    std::shared_ptr<Record> rec_;
};

/**
 * A deterministic priority queue of timed callbacks.
 *
 * All simulated entities share one queue; the constructor of each
 * SimObject receives a reference. Time never moves backwards: scheduling
 * in the past is a panic (a simulator bug by definition).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when. */
    EventHandle
    schedule(Tick when, std::function<void()> fn, const char *what = "")
    {
        if (when < now_) {
            panic("scheduling event '%s' in the past (%llu < %llu)", what,
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
        }
        auto rec = std::make_shared<EventHandle::Record>();
        rec->when = when;
        rec->seq = nextSeq_++;
        rec->fn = std::move(fn);
        heap_.push(rec);
        ++scheduledCount_;
        return EventHandle(rec);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> fn, const char *what = "")
    {
        return schedule(now_ + delay, std::move(fn), what);
    }

    /** True when no runnable events remain. */
    bool
    empty() const
    {
        return pendingCount() == 0;
    }

    /** Number of events that are scheduled and not cancelled. */
    std::size_t pendingCount() const;

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit (events at exactly @p limit still run).
     *
     * @return the number of events fired.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Fire at most one event. @return true if an event fired. */
    bool step();

    /** Total number of events ever scheduled (for stats/tests). */
    std::uint64_t scheduledCount() const { return scheduledCount_; }

    /** Total number of events ever fired. */
    std::uint64_t firedCount() const { return firedCount_; }

  private:
    using RecordPtr = std::shared_ptr<EventHandle::Record>;

    struct Later
    {
        bool
        operator()(const RecordPtr &a, const RecordPtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t scheduledCount_ = 0;
    std::uint64_t firedCount_ = 0;
    mutable std::priority_queue<RecordPtr, std::vector<RecordPtr>, Later>
        heap_;
};

} // namespace babol

#endif // BABOL_SIM_EVENT_QUEUE_HH
