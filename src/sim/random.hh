/**
 * @file
 * Deterministic random source.
 *
 * Every stochastic element of the model (bit-error injection, random
 * workload addresses, tR variation) draws from an explicitly seeded
 * Rng so runs are reproducible; there is no global generator.
 */

#ifndef BABOL_SIM_RANDOM_HH
#define BABOL_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace babol {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) : gen_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(gen_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        return d(gen_);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform01() < p; }

    /** Binomially distributed count of successes in n trials of prob p. */
    std::uint64_t
    binomial(std::uint64_t n, double p)
    {
        if (p <= 0.0 || n == 0)
            return 0;
        if (p >= 1.0)
            return n;
        std::binomial_distribution<std::uint64_t> d(n, p);
        return d(gen_);
    }

    /** Normally distributed sample. */
    double
    normal(double mean, double stddev)
    {
        std::normal_distribution<double> d(mean, stddev);
        return d(gen_);
    }

    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace babol

#endif // BABOL_SIM_RANDOM_HH
