/**
 * @file
 * Fundamental time and size types for the BABOL simulation substrate.
 *
 * The simulator measures time in integer picoseconds. A picosecond base
 * unit keeps every timing parameter in the ONFI specification (down to
 * fractions of a nanosecond at 200 MT/s and beyond) exactly representable
 * while still affording ~213 days of simulated time in 64 bits.
 */

#ifndef BABOL_SIM_TYPES_HH
#define BABOL_SIM_TYPES_HH

#include <cstdint>

namespace babol {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A tick value that compares later than any schedulable time. */
constexpr Tick kMaxTick = ~Tick(0);

namespace ticks {

constexpr Tick perNs = 1000;
constexpr Tick perUs = 1000 * perNs;
constexpr Tick perMs = 1000 * perUs;
constexpr Tick perSec = 1000 * perMs;

/** Convert nanoseconds to ticks. */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(perNs));
}

/** Convert microseconds to ticks. */
constexpr Tick
fromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(perUs));
}

/** Convert milliseconds to ticks. */
constexpr Tick
fromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(perMs));
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(perNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(perUs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
toMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(perMs);
}

/** Convert ticks to (fractional) seconds. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(perSec);
}

} // namespace ticks

/** User-defined literals so timing tables read like a datasheet. */
namespace time_literals {

constexpr Tick operator""_ns(unsigned long long v) { return v * ticks::perNs; }
constexpr Tick operator""_us(unsigned long long v) { return v * ticks::perUs; }
constexpr Tick operator""_ms(unsigned long long v) { return v * ticks::perMs; }
constexpr Tick operator""_ns(long double v)
{
    return ticks::fromNs(static_cast<double>(v));
}
constexpr Tick operator""_us(long double v)
{
    return ticks::fromUs(static_cast<double>(v));
}

} // namespace time_literals

/** Byte sizes. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

} // namespace babol

#endif // BABOL_SIM_TYPES_HH
