#include "event_queue.hh"

#include <bit>

namespace babol {

EventQueue::EventQueue()
    : wheelHead_(kWheelBuckets, kNilIndex), wheelBitmap_(kWheelBuckets / 64)
{}

void
EventQueue::growPool()
{
    babol_assert(chunks_.size() < (std::size_t(kNilIndex) >> kChunkShift),
                 "event record pool exhausted");
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size()) << kChunkShift;
    chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
    Record *chunk = chunks_.back().get();
    for (std::uint32_t i = 0; i < kChunkSize; ++i)
        chunk[i].next = i + 1 < kChunkSize ? base + i + 1 : freeHead_;
    freeHead_ = base;
}

void
EventQueue::releaseRecord(std::uint32_t idx)
{
    Record &rec = record(idx);
    if (rec.state == Record::Cancelled)
        --cancelledPending_;
    rec.fn.reset();
    rec.state = Record::Free;
    ++rec.gen; // invalidates every outstanding handle to this record
    rec.next = freeHead_;
    freeHead_ = idx;
    --poolLive_;
}

/** First occupied wheel slot in [from, to), or -1. */
std::int64_t
EventQueue::scanWheelRange(std::uint32_t from, std::uint32_t to) const
{
    if (from >= to)
        return -1;
    std::uint32_t w = from >> 6;
    const std::uint32_t lastWord = (to - 1) >> 6;
    std::uint64_t bits = wheelBitmap_[w] & (~std::uint64_t(0) << (from & 63));
    for (;;) {
        if (w == lastWord) {
            const std::uint32_t tail = to - (w << 6);
            if (tail < 64)
                bits &= (std::uint64_t(1) << tail) - 1;
        }
        if (bits)
            return (std::int64_t(w) << 6) + std::countr_zero(bits);
        if (w == lastWord)
            return -1;
        bits = wheelBitmap_[++w];
    }
}

/**
 * Ensure the ready heap holds the globally-earliest pending entries by
 * merging in the next occupied wheel bucket and/or the overflow entries
 * that land in (or before) it. @return false when fully drained.
 */
bool
EventQueue::primeReady()
{
    if (!ready_.empty())
        return true;
    if (wheelCount_ == 0 && overflow_.empty())
        return false;

    constexpr std::uint64_t kNoBucket = ~std::uint64_t(0);

    std::uint64_t wheelBucket = kNoBucket;
    if (wheelCount_ > 0) {
        const std::uint32_t start =
            static_cast<std::uint32_t>(nextBucket_) & (kWheelBuckets - 1);
        std::int64_t slot = scanWheelRange(start, kWheelBuckets);
        std::uint64_t dist;
        if (slot >= 0) {
            dist = static_cast<std::uint64_t>(slot) - start;
        } else {
            slot = scanWheelRange(0, start);
            babol_assert(slot >= 0, "wheel count / bitmap desync");
            dist = static_cast<std::uint64_t>(slot) + kWheelBuckets - start;
        }
        wheelBucket = nextBucket_ + dist;
    }

    const std::uint64_t farBucket =
        overflow_.empty() ? kNoBucket : overflow_.front().when >> kBucketShift;
    const std::uint64_t target = std::min(wheelBucket, farBucket);
    nextBucket_ = target + 1;

    if (wheelBucket == target) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(target) & (kWheelBuckets - 1);
        std::uint32_t idx = wheelHead_[slot];
        wheelHead_[slot] = kNilIndex;
        wheelBitmap_[slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
        while (idx != kNilIndex) {
            Record &rec = record(idx);
            const std::uint32_t nxt = rec.next;
            rec.next = kNilIndex;
            ready_.push_back(Entry{rec.when, rec.seq, idx, rec.gen});
            std::push_heap(ready_.begin(), ready_.end(), EntryLater{});
            --wheelCount_;
            idx = nxt;
        }
    }

    while (!overflow_.empty() &&
           (overflow_.front().when >> kBucketShift) <= target) {
        std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
        ready_.push_back(overflow_.back());
        overflow_.pop_back();
        std::push_heap(ready_.begin(), ready_.end(), EntryLater{});
    }

    babol_assert(!ready_.empty(), "primed an empty bucket");
    return true;
}

void
EventQueue::popReadyTop()
{
    std::pop_heap(ready_.begin(), ready_.end(), EntryLater{});
    ready_.pop_back();
}

/** Head of the merged order after dropping lazily-cancelled entries. */
const EventQueue::Entry *
EventQueue::peekLive()
{
    for (;;) {
        if (ready_.empty() && !primeReady())
            return nullptr;
        const Entry &e = ready_.front();
        const Record &rec = record(e.idx);
        babol_assert(rec.gen == e.gen, "event entry / record desync");
        if (rec.state != Record::Cancelled)
            return &ready_.front();
        const std::uint32_t idx = e.idx;
        popReadyTop();
        releaseRecord(idx);
    }
}

Tick
EventQueue::nextEventTime()
{
    const Entry *top = peekLive();
    return top ? top->when : kMaxTick;
}

bool
EventQueue::step()
{
    const Entry *top = peekLive();
    if (!top)
        return false;
    const Entry e = *top;
    popReadyTop();

    Record &rec = record(e.idx);
    babol_assert(e.when >= now_, "event queue time went backwards");
    now_ = e.when;
    rec.state = Record::Firing; // handles go inert before the callback runs
    --livePending_;
    ++firedCount_;
    if (fireHook_)
        fireHook_(e.when, e.seq);
    rec.fn();
    // The pool only grows during the callback (chunks are stable and the
    // firing record is not on the free list), so rec is still valid here.
    releaseRecord(e.idx);
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t fired = 0;
    for (;;) {
        const Entry *top = peekLive();
        if (!top)
            break;
        if (top->when > limit) {
            // Advance time to the window edge so that callers composing
            // bounded runs observe a consistent clock.
            now_ = limit;
            break;
        }
        step();
        ++fired;
    }
    return fired;
}

void
EventQueue::maybeCompact()
{
    // Lazily-cancelled records hold a pool slot until their tick comes
    // up; once they outnumber live events (and there are enough of them
    // to matter), sweep them out of the wheel and both heaps.
    if (cancelledPending_ >= 64 && cancelledPending_ > livePending_)
        compact();
}

void
EventQueue::compact()
{
    statCompact_.inc();

    auto sweepHeap = [this](std::vector<Entry> &heap) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < heap.size(); ++i) {
            if (record(heap[i].idx).state == Record::Cancelled)
                releaseRecord(heap[i].idx);
            else
                heap[kept++] = heap[i];
        }
        heap.resize(kept);
        std::make_heap(heap.begin(), heap.end(), EntryLater{});
    };
    sweepHeap(ready_);
    sweepHeap(overflow_);

    for (std::uint32_t slot = 0;
         wheelCount_ > 0 && slot < kWheelBuckets; ++slot) {
        if (wheelHead_[slot] == kNilIndex)
            continue;
        std::uint32_t *link = &wheelHead_[slot];
        while (*link != kNilIndex) {
            const std::uint32_t idx = *link;
            Record &rec = record(idx);
            if (rec.state == Record::Cancelled) {
                *link = rec.next; // unlink before the free list reuses next
                rec.next = kNilIndex;
                releaseRecord(idx);
                --wheelCount_;
            } else {
                link = &rec.next;
            }
        }
        if (wheelHead_[slot] == kNilIndex)
            wheelBitmap_[slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
    }
}

EventQueue::PoolStats
EventQueue::poolStats() const
{
    PoolStats s;
    s.poolCapacity = chunks_.size() * kChunkSize;
    s.poolLive = poolLive_;
    s.poolHighWater = poolHighWater_;
    s.inlineCallbacks = statInlineCb_.value();
    s.outlineCallbacks = statOutlineCb_.value();
    s.wheelInserts = statWheel_.value();
    s.heapInserts = statHeap_.value();
    s.readyInserts = statReady_.value();
    s.compactions = statCompact_.value();
    s.cancelledPending = cancelledPending_;
    return s;
}

} // namespace babol
