#include "event_queue.hh"

namespace babol {

std::size_t
EventQueue::pendingCount() const
{
    // Drop cancelled events sitting at the head so that empty() is exact.
    while (!heap_.empty() && heap_.top()->cancelled)
        heap_.pop();
    // Cancelled events buried deeper are counted until they surface; an
    // exact count would require a scan. Events are cancelled rarely
    // (suspend/resume paths), so over-counting is acceptable for stats but
    // not for emptiness: empty() only needs head-exactness, which the loop
    // above provides.
    return heap_.size();
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        RecordPtr rec = heap_.top();
        heap_.pop();
        if (rec->cancelled)
            continue;
        babol_assert(rec->when >= now_, "event queue time went backwards");
        now_ = rec->when;
        rec->fired = true;
        ++firedCount_;
        rec->fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t fired = 0;
    while (true) {
        while (!heap_.empty() && heap_.top()->cancelled)
            heap_.pop();
        if (heap_.empty())
            break;
        if (heap_.top()->when > limit) {
            // Advance time to the window edge so that callers composing
            // bounded runs observe a consistent clock.
            now_ = limit;
            break;
        }
        if (step())
            ++fired;
    }
    return fired;
}

} // namespace babol
