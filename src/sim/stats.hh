/**
 * @file
 * Statistics primitives: scalar counters and sampled distributions.
 *
 * Each experiment harness composes these into the rows the paper reports.
 * Distributions keep every sample only when small; beyond a threshold
 * they subsample deterministically so long fio runs stay cheap while
 * percentiles remain meaningful.
 */

#ifndef BABOL_SIM_STATS_HH
#define BABOL_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "types.hh"

namespace babol {

/**
 * Fixed-bucket base-2 log histogram for positive values.
 *
 * Buckets subdivide each power-of-two range into kSubBuckets equal
 * slices, giving a worst-case relative quantile error of
 * 1/(2*kSubBuckets) ≈ 3% over ~19 decades — enough for the p50/p95/p99
 * figures the paper reports, at a fixed 8 KiB per histogram and O(1)
 * insertion with no allocation or sorting. Two overflow buckets catch
 * non-positive and out-of-range values.
 */
class LogHistogram
{
  public:
    static constexpr int kMinExp = -16; //!< 2^-16 ≈ 1.5e-5
    static constexpr int kMaxExp = 48;  //!< 2^48 ≈ 2.8e14
    static constexpr int kSubBuckets = 16;
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

    void add(double v) { ++counts_[indexOf(v)]; }

    std::uint64_t
    total() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t c : counts_)
            n += c;
        return n;
    }

    /**
     * Value at percentile @p p in [0, 100]: the midpoint of the bucket
     * holding the rank-th count. Callers clamp to observed [min, max]
     * for exact extremes.
     */
    double percentile(double p) const;

    void reset() { counts_.fill(0); }

  private:
    static std::size_t indexOf(double v);
    static double midpointOf(std::size_t index);

    std::array<std::uint64_t, kBuckets> counts_{};
};

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : name_(std::move(name)) {}

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * A sampled distribution with min/max/mean and percentile queries.
 *
 * Keeps at most @p maxSamples individual values; past that, it keeps
 * every k-th sample (k doubling as needed) which preserves percentile
 * accuracy for the smooth distributions we measure (latencies).
 * Min/max/mean/count always reflect *all* samples.
 */
class Distribution
{
  public:
    explicit Distribution(std::string name = "",
                          std::size_t max_samples = 1 << 16)
        : name_(std::move(name)), maxSamples_(max_samples)
    {}

    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        hist_.add(v);
        if (count_ % stride_ == 0) {
            samples_.push_back(v);
            if (samples_.size() >= maxSamples_)
                decimate();
        }
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Percentile in [0, 100]; linear interpolation between kept samples. */
    double percentile(double p) const;

    /**
     * Percentile from the log histogram: O(buckets), sees *every*
     * sample (no subsampling), ~3% worst-case relative error. Clamped
     * to the observed [min, max].
     */
    double
    histPercentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        return std::clamp(hist_.percentile(p), min_, max_);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        stride_ = 1;
        samples_.clear();
        hist_.reset();
    }

    const std::string &name() const { return name_; }

  private:
    void decimate();

    std::string name_;
    std::size_t maxSamples_;
    std::uint64_t count_ = 0;
    std::uint64_t stride_ = 1;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::vector<double> samples_;
    LogHistogram hist_;
};

/** Bandwidth helper: bytes moved over a tick interval, in MB/s (1e6). */
inline double
bandwidthMBps(std::uint64_t bytes, Tick interval)
{
    if (interval == 0)
        return 0.0;
    return (static_cast<double>(bytes) / 1e6) / ticks::toSec(interval);
}

} // namespace babol

#endif // BABOL_SIM_STATS_HH
