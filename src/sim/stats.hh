/**
 * @file
 * Statistics primitives: scalar counters and sampled distributions.
 *
 * Each experiment harness composes these into the rows the paper reports.
 * Distributions keep every sample only when small; beyond a threshold
 * they subsample deterministically so long fio runs stay cheap while
 * percentiles remain meaningful.
 */

#ifndef BABOL_SIM_STATS_HH
#define BABOL_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "types.hh"

namespace babol {

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : name_(std::move(name)) {}

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * A sampled distribution with min/max/mean and percentile queries.
 *
 * Keeps at most @p maxSamples individual values; past that, it keeps
 * every k-th sample (k doubling as needed) which preserves percentile
 * accuracy for the smooth distributions we measure (latencies).
 * Min/max/mean/count always reflect *all* samples.
 */
class Distribution
{
  public:
    explicit Distribution(std::string name = "",
                          std::size_t max_samples = 1 << 16)
        : name_(std::move(name)), maxSamples_(max_samples)
    {}

    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        if (count_ % stride_ == 0) {
            samples_.push_back(v);
            if (samples_.size() >= maxSamples_)
                decimate();
        }
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Percentile in [0, 100]; linear interpolation between kept samples. */
    double percentile(double p) const;

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        stride_ = 1;
        samples_.clear();
    }

    const std::string &name() const { return name_; }

  private:
    void decimate();

    std::string name_;
    std::size_t maxSamples_;
    std::uint64_t count_ = 0;
    std::uint64_t stride_ = 1;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::vector<double> samples_;
};

/** Bandwidth helper: bytes moved over a tick interval, in MB/s (1e6). */
inline double
bandwidthMBps(std::uint64_t bytes, Tick interval)
{
    if (interval == 0)
        return 0.0;
    return (static_cast<double>(bytes) / 1e6) / ticks::toSec(interval);
}

} // namespace babol

#endif // BABOL_SIM_STATS_HH
