#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.hh"

namespace babol {

void
Table::addRow(std::vector<std::string> row)
{
    babol_assert(row.size() == headers_.size(),
                 "row width %zu != header width %zu", row.size(),
                 headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace babol
