/**
 * @file
 * Base class for named simulated entities.
 *
 * A SimObject owns a name (dotted hierarchy, e.g. "ssd.chan0.lun3") and a
 * reference to the shared EventQueue. It mirrors gem5's SimObject in
 * spirit but is deliberately minimal: construction order defines the
 * hierarchy and there is no separate init phase.
 */

#ifndef BABOL_SIM_SIM_OBJECT_HH
#define BABOL_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "event_queue.hh"
#include "types.hh"

namespace babol {

class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : eq_(eq), name_(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name. */
    const std::string &name() const { return name_; }

    /** The shared event queue. */
    EventQueue &eventQueue() { return eq_; }
    const EventQueue &eventQueue() const { return eq_; }

    /** Current simulated time. */
    Tick curTick() const { return eq_.now(); }

  protected:
    /** Schedule a member callback @p delay ticks from now. Forwards the
     *  callable so small captures stay on the kernel's inline path. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn, const char *what = "")
    {
        return eq_.scheduleIn(delay, std::forward<F>(fn), what);
    }

    EventQueue &eq_;

  private:
    std::string name_;
};

} // namespace babol

#endif // BABOL_SIM_SIM_OBJECT_HH
