#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <vector>

namespace babol {

std::string
vstrfmt(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n < 0)
        return std::string("<format error>");

    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vstrfmt(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw SimPanic(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw SimFatal(msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

namespace {

std::set<std::string> &
flagSet()
{
    static std::set<std::string> flags = [] {
        std::set<std::string> init;
        if (const char *env = std::getenv("BABOL_DEBUG")) {
            std::string s(env);
            std::size_t pos = 0;
            while (pos < s.size()) {
                std::size_t comma = s.find(',', pos);
                if (comma == std::string::npos)
                    comma = s.size();
                if (comma > pos)
                    init.insert(s.substr(pos, comma - pos));
                pos = comma + 1;
            }
        }
        return init;
    }();
    return flags;
}

} // namespace

void
DebugFlags::enable(const std::string &flag)
{
    flagSet().insert(flag);
}

void
DebugFlags::disable(const std::string &flag)
{
    flagSet().erase(flag);
}

bool
DebugFlags::enabled(const std::string &flag)
{
    const auto &flags = flagSet();
    return flags.count(flag) > 0 || flags.count("All") > 0;
}

void
DebugFlags::clearAll()
{
    flagSet().clear();
}

void
dtrace(const char *flag, const char *fmt, ...)
{
    if (!DebugFlags::enabled(flag))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "%s: %s\n", flag, msg.c_str());
}

} // namespace babol
