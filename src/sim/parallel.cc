#include "parallel.hh"

#include <algorithm>
#include <barrier>
#include <thread>

namespace babol::sim {

ParallelEngine::ParallelEngine(std::uint32_t shards, Tick lookahead)
    : shardCount_(shards), lookahead_(lookahead)
{
    babol_assert(shards >= 1, "engine needs at least one shard");
    babol_assert(lookahead >= 1, "lookahead must be positive");
    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<ShardState>());
    links_.resize(std::size_t(shards) * shards);
    for (std::uint32_t from = 0; from < shards; ++from)
        for (std::uint32_t to = 0; to < shards; ++to)
            if (from != to)
                links_[std::size_t(from) * shards + to] =
                    std::make_unique<ShardLink<Msg>>();
}

ParallelEngine::~ParallelEngine() = default;

EventQueue &
ParallelEngine::queue(std::uint32_t shard)
{
    babol_assert(shard < shardCount_, "shard %u out of range", shard);
    return shards_[shard]->queue;
}

void
ParallelEngine::setShardHooks(std::uint32_t shard, Fn enter, Fn leave)
{
    babol_assert(shard < shardCount_, "shard %u out of range", shard);
    shards_[shard]->enter = std::move(enter);
    shards_[shard]->leave = std::move(leave);
}

void
ParallelEngine::setEpochHook(std::uint64_t windows, Fn fn)
{
    epochEvery_ = windows;
    epochHook_ = std::move(fn);
}

ShardLink<ParallelEngine::Msg> &
ParallelEngine::link(std::uint32_t from, std::uint32_t to)
{
    return *links_[std::size_t(from) * shardCount_ + to];
}

std::uint64_t
ParallelEngine::maxLinkOverflowHighWater() const
{
    std::uint64_t hw = 0;
    for (const auto &l : links_)
        if (l) // self-links are never created
            hw = std::max(hw, l->overflowHighWater());
    return hw;
}

void
ParallelEngine::post(std::uint32_t from, std::uint32_t to, Tick when, Fn fn)
{
    babol_assert(from < shardCount_ && to < shardCount_ && from != to,
                 "bad link %u -> %u", from, to);
    const Tick senderNow = shards_[from]->queue.now();
    babol_assert(when >= senderNow + lookahead_,
                 "cross-shard message violates lookahead: when=%llu < "
                 "now=%llu + L=%llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(senderNow),
                 static_cast<unsigned long long>(lookahead_));
    link(from, to).post(Msg{when, std::move(fn)});
    messages_.fetch_add(1, std::memory_order_relaxed);
}

void
ParallelEngine::drainInbox(std::uint32_t shard)
{
    // Fixed sender order: delivery (and hence the receiver's sequence
    // numbering of same-tick messages) is independent of thread count.
    EventQueue &q = shards_[shard]->queue;
    for (std::uint32_t from = 0; from < shardCount_; ++from) {
        if (from == shard)
            continue;
        link(from, shard).drain([&q](Msg &&m) {
            q.schedule(m.when, std::move(m.fn), "xshard");
        });
    }
}

void
ParallelEngine::onBarrier()
{
    if (phase_ == 0) {
        // All shards drained and reported: compute the next window.
        Tick bound = kMaxTick;
        for (const auto &s : shards_)
            bound = std::min(bound, s->nextTime);
        if (abort_.load(std::memory_order_relaxed) || bound == kMaxTick ||
            bound > until_) {
            done_ = true;
        } else {
            const Tick edge = bound > kMaxTick - (lookahead_ - 1)
                                  ? kMaxTick
                                  : bound + lookahead_ - 1;
            limit_ = std::min(edge, until_);
            ++windows_;
        }
        phase_ = 1;
    } else {
        // All shards ran their window; a quiesced point suitable for
        // deterministic merges.
        if (abort_.load(std::memory_order_relaxed))
            done_ = true;
        if (epochHook_ && epochEvery_ && windows_ % epochEvery_ == 0)
            epochHook_();
        phase_ = 0;
    }
}

namespace {

/** Shards owned by thread @p tid under the fixed s-mod-T mapping. */
struct OwnedShards
{
    std::uint32_t tid, threads, count;

    struct Iter
    {
        std::uint32_t s, step;
        std::uint32_t operator*() const { return s; }
        Iter &operator++() { s += step; return *this; }
        bool operator!=(const Iter &o) const { return s < o.s; }
    };

    Iter begin() const { return {tid, threads}; }
    Iter end() const { return {count, threads}; }
};

} // namespace

std::uint64_t
ParallelEngine::run(std::uint32_t threads, Tick until)
{
    threads = std::max(1u, std::min(threads, shardCount_));
    until_ = until;
    done_ = false;
    phase_ = 0;
    abort_.store(false, std::memory_order_relaxed);
    for (auto &s : shards_)
        s->error = nullptr;

    std::barrier sync(threads, [this]() noexcept { onBarrier(); });

    std::vector<std::uint64_t> fired(threads, 0);

    auto body = [&](std::uint32_t tid) {
        const OwnedShards mine{tid, threads, shardCount_};
        for (;;) {
            for (std::uint32_t s : mine) {
                try {
                    drainInbox(s);
                    shards_[s]->nextTime = shards_[s]->queue.nextEventTime();
                } catch (...) {
                    shards_[s]->error = std::current_exception();
                    abort_.store(true, std::memory_order_relaxed);
                }
            }
            sync.arrive_and_wait();
            if (done_)
                break;
            for (std::uint32_t s : mine) {
                ShardState &st = *shards_[s];
                if (st.enter)
                    st.enter();
                try {
                    fired[tid] += st.queue.run(limit_);
                } catch (...) {
                    st.error = std::current_exception();
                    abort_.store(true, std::memory_order_relaxed);
                }
                if (st.leave)
                    st.leave();
            }
            sync.arrive_and_wait();
            if (done_)
                break;
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (std::uint32_t t = 1; t < threads; ++t)
        workers.emplace_back(body, t);
    body(0);
    for (auto &w : workers)
        w.join();

    // Final quiesced merge so epoch consumers see a complete trace.
    if (epochHook_)
        epochHook_();

    // Deterministic error propagation: lowest failing shard wins.
    for (const auto &s : shards_)
        if (s->error)
            std::rethrow_exception(s->error);

    std::uint64_t total = 0;
    for (std::uint64_t f : fired)
        total += f;
    return total;
}

} // namespace babol::sim
