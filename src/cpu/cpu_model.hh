/**
 * @file
 * The embedded-processor cost model.
 *
 * BABOL's Operation Scheduling runs in software on an embedded core (a
 * 150 MHz MicroBlaze soft-core up to a 1 GHz Zynq ARM in the paper).
 * Every software action — admitting an operation, building and enqueuing
 * a transaction, a context switch, a completion interrupt — is charged
 * in CPU cycles and serialized through this model, so software overhead
 * and CPU contention shape the results exactly as processor frequency
 * did in the paper's Fig. 10.
 *
 * Two priority levels model the usual firmware split: interrupt-side
 * work (completion handling, hardware-FIFO refill) runs ahead of
 * task-side work (polling loops, bookkeeping). Items are not preempted
 * mid-flight — each is microseconds long, like the real critical
 * sections they stand for.
 */

#ifndef BABOL_CPU_CPU_MODEL_HH
#define BABOL_CPU_CPU_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/power/power.hh"
#include "sim/sim_object.hh"

namespace babol::cpu {

enum class CpuPriority : std::uint8_t {
    Normal, //!< task context (operation logic, polling loops)
    High,   //!< interrupt context (completions, dispatch to hardware)
};

class CpuModel : public SimObject
{
  public:
    CpuModel(EventQueue &eq, const std::string &name, std::uint32_t mhz,
             obs::power::PowerModel *power = nullptr)
        : SimObject(eq, name), mhz_(mhz),
          power_(power, eq, name, {"busy"},
                 static_cast<std::uint64_t>(mhz) *
                     obs::power::modelOf(power).params().cpuIdleUwPerMhz /
                     1000),
          activeMw_(static_cast<std::uint64_t>(mhz) *
                    obs::power::modelOf(power).params().cpuActiveUwPerMhz /
                    1000)
    {
        babol_assert(mhz > 0, "CPU frequency must be positive");
    }

    std::uint32_t frequencyMhz() const { return mhz_; }

    /** Duration of @p cycles at the configured frequency. */
    Tick
    cyclesToTicks(std::uint64_t cycles) const
    {
        // ticks per cycle = 1e12 / (mhz * 1e6) = 1e6 / mhz.
        return cycles * (1000000ull) / mhz_;
    }

    /**
     * Run @p fn after spending @p cycles of CPU time. High-priority
     * items overtake queued normal-priority ones (but never interrupt
     * the item already executing).
     */
    void
    execute(std::uint64_t cycles, std::function<void()> fn,
            const char *what = "cpu work",
            CpuPriority prio = CpuPriority::Normal)
    {
        Item item{cycles, std::move(fn), what};
        if (prio == CpuPriority::High)
            highQueue_.push_back(std::move(item));
        else
            normalQueue_.push_back(std::move(item));
        totalCycles_ += cycles;
        ++workItems_;
        pump();
    }

    /** True when no work is queued or running. */
    bool idle() const { return !running_ && highQueue_.empty() &&
                               normalQueue_.empty(); }

    /** Cumulative busy time (utilization = busyTicks / elapsed). */
    Tick busyTicks() const { return busyTicks_; }
    std::uint64_t totalCycles() const { return totalCycles_; }
    std::uint64_t workItems() const { return workItems_; }

    /** The core's power rail (active cycles + clock-gated idle). */
    obs::power::Meter &powerMeter() { return power_; }

  private:
    struct Item
    {
        std::uint64_t cycles;
        std::function<void()> fn;
        const char *what;
    };

    void
    pump()
    {
        if (running_)
            return;
        std::deque<Item> &queue =
            !highQueue_.empty() ? highQueue_ : normalQueue_;
        if (queue.empty())
            return;
        Item item = std::move(queue.front());
        queue.pop_front();
        running_ = true;
        Tick dur = cyclesToTicks(item.cycles);
        busyTicks_ += dur;
        power_.charge(0, curTick(), curTick() + dur, activeMw_);
        eq_.scheduleIn(dur, [this, fn = std::move(item.fn)] {
            running_ = false;
            fn();
            pump();
        }, item.what);
    }

    std::uint32_t mhz_;
    obs::power::Meter power_;
    std::uint64_t activeMw_;
    bool running_ = false;
    std::deque<Item> highQueue_;
    std::deque<Item> normalQueue_;
    Tick busyTicks_ = 0;
    std::uint64_t totalCycles_ = 0;
    std::uint64_t workItems_ = 0;
};

} // namespace babol::cpu

#endif // BABOL_CPU_CPU_MODEL_HH
