#include "rtos.hh"

#include <algorithm>

namespace babol::cpu {

RtosKernel::RtosKernel(EventQueue &eq, const std::string &name,
                       CpuModel &cpu, RtosCosts costs)
    : SimObject(eq, name), cpu_(cpu), costs_(costs)
{}

void
RtosKernel::createTask(RtosTask *task)
{
    babol_assert(task != nullptr, "null task");
    babol_assert(!alive_.count(task), "task '%s' registered twice",
                 task->taskName().c_str());
    alive_.insert(task);
    cpu_.execute(costs_.taskCreate, [] {}, "rtos task create");
}

void
RtosKernel::destroyTask(RtosTask *task)
{
    alive_.erase(task);
}

void
RtosKernel::enqueue(RtosTask *to, std::uint64_t msg)
{
    babol_assert(alive_.count(to), "message to unregistered task");
    pending_.push_back({to, msg, nextSeq_++});
    pump();
}

void
RtosKernel::send(RtosTask *to, std::uint64_t msg)
{
    cpu_.execute(costs_.queueSend, [] {}, "rtos queue send");
    enqueue(to, msg);
}

void
RtosKernel::sendFromIsr(RtosTask *to, std::uint64_t msg)
{
    cpu_.execute(costs_.isrEntry + costs_.queueSend, [] {},
                 "rtos isr send", CpuPriority::High);
    enqueue(to, msg);
}

void
RtosKernel::pump()
{
    if (dispatchScheduled_ || pending_.empty())
        return;
    dispatchScheduled_ = true;
    cpu_.execute(costs_.contextSwitch + costs_.queueReceive,
                 [this] { dispatchOne(); }, "rtos dispatch");
}

void
RtosKernel::dispatchOne()
{
    dispatchScheduled_ = false;
    if (pending_.empty())
        return;

    // Pick the highest-priority pending message (FIFO within a priority),
    // as a preemptive-priority kernel would.
    auto best = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->task->priority() > best->task->priority() ||
            (it->task->priority() == best->task->priority() &&
             it->seq < best->seq)) {
            best = it;
        }
    }
    Pending p = *best;
    pending_.erase(best);

    if (alive_.count(p.task)) {
        ++delivered_;
        p.task->onMessage(*this, p.msg);
    }
    pump();
}

} // namespace babol::cpu
