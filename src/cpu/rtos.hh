/**
 * @file
 * A miniature real-time kernel in the FreeRTOS mold.
 *
 * Tasks are prioritized actors that receive 64-bit messages through the
 * kernel; message dispatch charges realistic context-switch and queue
 * costs to the CpuModel. This substrate backs BABOL's RTOS software
 * environment: operations are written as explicit state machines that
 * exchange messages — markedly cheaper per step than coroutines, and
 * markedly more demanding of the programmer, exactly the trade-off the
 * paper reports (§V Discussion, Fig. 10/11).
 */

#ifndef BABOL_CPU_RTOS_HH
#define BABOL_CPU_RTOS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>

#include "cpu_model.hh"

namespace babol::cpu {

class RtosKernel;

/** Cycle costs of kernel primitives (FreeRTOS-on-ARM ballpark). */
struct RtosCosts
{
    std::uint64_t contextSwitch = 350;
    std::uint64_t queueSend = 180;
    std::uint64_t queueReceive = 180;
    std::uint64_t isrEntry = 300;
    std::uint64_t taskCreate = 900;
};

/** Base class for RTOS tasks (actors). */
class RtosTask
{
  public:
    RtosTask(std::string name, int priority)
        : name_(std::move(name)), priority_(priority)
    {}
    virtual ~RtosTask() = default;

    /** Deliver one message; runs in (simulated) task context. */
    virtual void onMessage(RtosKernel &kernel, std::uint64_t msg) = 0;

    const std::string &taskName() const { return name_; }
    int priority() const { return priority_; }

  private:
    std::string name_;
    int priority_;
};

class RtosKernel : public SimObject
{
  public:
    RtosKernel(EventQueue &eq, const std::string &name, CpuModel &cpu,
               RtosCosts costs = {});

    CpuModel &cpu() { return cpu_; }
    const RtosCosts &costs() const { return costs_; }

    /** Register a task; charges the creation cost. */
    void createTask(RtosTask *task);

    /** Unregister; undelivered messages to it are dropped. */
    void destroyTask(RtosTask *task);

    /** Post a message from task context (xQueueSend). */
    void send(RtosTask *to, std::uint64_t msg);

    /** Post a message from interrupt context (xQueueSendFromISR). */
    void sendFromIsr(RtosTask *to, std::uint64_t msg);

    std::uint64_t messagesDelivered() const { return delivered_; }

  private:
    struct Pending
    {
        RtosTask *task;
        std::uint64_t msg;
        std::uint64_t seq;
    };

    void enqueue(RtosTask *to, std::uint64_t msg);
    void pump();
    void dispatchOne();

    CpuModel &cpu_;
    RtosCosts costs_;
    std::deque<Pending> pending_;
    std::unordered_set<RtosTask *> alive_;
    bool dispatchScheduled_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t delivered_ = 0;
};

} // namespace babol::cpu

#endif // BABOL_CPU_RTOS_HH
