#include "cli.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "audit/auditor.hh"
#include "hub.hh"
#include "perfetto.hh"
#include "sim/logging.hh"

namespace babol::obs::cli {

const char *
Options::usage()
{
    return "[--trace-out FILE] [--metrics-out FILE] [--audit[=FILE]]";
}

bool
Options::parse(int argc, char **argv, int &i)
{
    const char *arg = argv[i];
    if (!std::strcmp(arg, "--trace-out") && i + 1 < argc) {
        traceOut = argv[++i];
        return true;
    }
    if (!std::strcmp(arg, "--metrics-out") && i + 1 < argc) {
        metricsOut = argv[++i];
        return true;
    }
    if (!std::strcmp(arg, "--audit")) {
        audit = true;
        return true;
    }
    if (!std::strncmp(arg, "--audit=", 8)) {
        audit = true;
        auditOut = arg + 8;
        return true;
    }
    return false;
}

void
Options::applyStartup() const
{
    if (!traceOut.empty())
        trace().setEnabled(true);
    if (!audit)
        return;
    audit::Auditor::Config cfg;
    cfg.throwOnDiagnostic = false; // collect; report at finalize()
    cfg.enableTrace = true;        // flight dumps + conservation pass
    audit::Auditor::instance().arm(cfg);
}

void
Options::captureMetrics(const EventQueue &eq)
{
    MetricsGroup kernel(metrics(), "kernel");
    registerEventQueueMetrics(kernel, eq);
    snapshot_ = metrics().snapshot();
}

int
Options::finalize() const
{
    if (!traceOut.empty()) {
        std::ofstream out(traceOut);
        if (!out)
            fatal("cannot open %s", traceOut.c_str());
        writePerfettoJson(out, trace());
        std::printf("wrote %llu trace records to %s\n",
                    static_cast<unsigned long long>(trace().size()),
                    traceOut.c_str());
    }

    if (!metricsOut.empty()) {
        std::ofstream out(metricsOut);
        if (!out)
            fatal("cannot open %s", metricsOut.c_str());
        if (snapshot_)
            MetricsRegistry::writeJson(out, *snapshot_);
        else
            metrics().writeJson(out);
        std::printf("wrote metrics to %s\n", metricsOut.c_str());
    }

    auto &aud = audit::Auditor::instance();
    if (!audit || !aud.armed())
        return 0;

    aud.finish(); // cross-layer span conservation over the trace ring
    if (auditOut.empty()) {
        aud.writeReport(std::cout);
    } else {
        std::ofstream out(auditOut);
        if (!out)
            fatal("cannot open %s", auditOut.c_str());
        aud.writeReport(out);
        std::printf("wrote audit report to %s\n", auditOut.c_str());
    }
    // Suppressed (fault-expected) diagnostics never fail the run.
    return aud.unsuppressedCount() == 0 ? 0 : 1;
}

} // namespace babol::obs::cli
