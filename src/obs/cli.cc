#include "cli.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include <cstdlib>

#include "audit/auditor.hh"
#include "hub.hh"
#include "perfetto.hh"
#include "power/power.hh"
#include "sim/logging.hh"

namespace babol::obs::cli {

const char *
Options::usage()
{
    return "[--trace-out FILE] [--metrics-out FILE] [--audit[=FILE]] "
           "[--power-out FILE] [--power-cap MW]";
}

bool
Options::parse(int argc, char **argv, int &i)
{
    const char *arg = argv[i];
    if (!std::strcmp(arg, "--trace-out") && i + 1 < argc) {
        traceOut = argv[++i];
        return true;
    }
    if (!std::strcmp(arg, "--metrics-out") && i + 1 < argc) {
        metricsOut = argv[++i];
        return true;
    }
    if (!std::strcmp(arg, "--audit")) {
        audit = true;
        return true;
    }
    if (!std::strncmp(arg, "--audit=", 8)) {
        audit = true;
        auditOut = arg + 8;
        return true;
    }
    if (!std::strcmp(arg, "--power-out") && i + 1 < argc) {
        powerOut = argv[++i];
        return true;
    }
    if (!std::strcmp(arg, "--power-cap") && i + 1 < argc) {
        powerCapMw = std::strtoull(argv[++i], nullptr, 10);
        if (powerCapMw == 0)
            fatal("--power-cap needs a positive cap in mW");
        return true;
    }
    return false;
}

void
Options::applyStartup() const
{
    if (!traceOut.empty())
        trace().setEnabled(true);
    if (!powerOut.empty() || powerCapMw > 0) {
        auto &pm = power::PowerModel::instance();
        pm.enable();
        if (powerCapMw > 0) {
            power::GovernorConfig g;
            g.capMw = powerCapMw;
            pm.setGovernorConfig(g);
        }
    }
    if (!audit)
        return;
    audit::Auditor::Config cfg;
    cfg.throwOnDiagnostic = false; // collect; report at finalize()
    cfg.enableTrace = true;        // flight dumps + conservation pass
    audit::Auditor::instance().arm(cfg);
}

void
Options::captureMetrics(const EventQueue &eq)
{
    MetricsGroup kernel(metrics(), "kernel");
    registerEventQueueMetrics(kernel, eq);
    snapshot_ = metrics().snapshot();
    snapshot_->simTicks = eq.now();
}

int
Options::finalize() const
{
    if (!traceOut.empty()) {
        std::ofstream out(traceOut);
        if (!out)
            fatal("cannot open %s", traceOut.c_str());
        writePerfettoJson(out, trace());
        std::printf("wrote %llu trace records to %s\n",
                    static_cast<unsigned long long>(trace().size()),
                    traceOut.c_str());
    }

    if (!metricsOut.empty()) {
        std::ofstream out(metricsOut);
        if (!out)
            fatal("cannot open %s", metricsOut.c_str());
        if (snapshot_)
            MetricsRegistry::writeJson(out, *snapshot_);
        else
            metrics().writeJson(out);
        std::printf("wrote metrics to %s\n", metricsOut.c_str());
    }

    if (!powerOut.empty()) {
        std::ofstream out(powerOut);
        if (!out)
            fatal("cannot open %s", powerOut.c_str());
        power::PowerModel::instance().writeJson(out);
        std::printf("wrote power summary to %s\n", powerOut.c_str());
    }
    if (powerCapMw > 0) {
        auto &pm = power::PowerModel::instance();
        std::printf("power governor: cap %llu mW, %llu throttle "
                    "window(s), %.1f us throttled\n",
                    static_cast<unsigned long long>(powerCapMw),
                    static_cast<unsigned long long>(
                        pm.throttleWindowsTotal()),
                    ticks::toUs(pm.throttledTicksTotal()));
    }

    auto &aud = audit::Auditor::instance();
    if (!audit || !aud.armed())
        return 0;

    aud.finish(); // cross-layer span conservation over the trace ring
    if (auditOut.empty()) {
        aud.writeReport(std::cout);
    } else {
        std::ofstream out(auditOut);
        if (!out)
            fatal("cannot open %s", auditOut.c_str());
        aud.writeReport(out);
        std::printf("wrote audit report to %s\n", auditOut.c_str());
    }
    // Suppressed (fault-expected) diagnostics never fail the run.
    return aud.unsuppressedCount() == 0 ? 0 : 1;
}

} // namespace babol::obs::cli
