/**
 * @file
 * Label interner: maps strings to dense 32-bit ids, once.
 *
 * Trace records store label *ids*, never strings, so the recording hot
 * path does no heap allocation after a label's first appearance. The
 * lookup is heterogeneous (C++20 transparent hashing) so repeat interns
 * by string_view build no temporary std::string either.
 *
 * The interner is the one obs structure deliberately shared across
 * shards and fleet members (ids must agree so merged trace records
 * decode uniformly), so it is mutex-guarded. Interning happens at
 * component construction, never on the per-event hot path, so the lock
 * is cold; label() returns a reference to node-stable storage that
 * outlives the lock.
 */

#ifndef BABOL_OBS_INTERNER_HH
#define BABOL_OBS_INTERNER_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace babol::obs {

class Interner
{
  public:
    static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

    /** Id for @p s, minting one on first sight (the only allocating path). */
    std::uint32_t
    intern(std::string_view s)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = ids_.find(s);
        if (it != ids_.end())
            return it->second;
        const auto id = static_cast<std::uint32_t>(labels_.size());
        auto [pos, inserted] = ids_.emplace(std::string(s), id);
        labels_.push_back(&pos->first);
        return id;
    }

    /** Id for @p s if already interned, else kInvalid. Never allocates. */
    std::uint32_t
    find(std::string_view s) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = ids_.find(s);
        return it == ids_.end() ? kInvalid : it->second;
    }

    const std::string &
    label(std::uint32_t id) const
    {
        static const std::string unknown = "<?>";
        std::lock_guard<std::mutex> lk(mu_);
        return id < labels_.size() ? *labels_[id] : unknown;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return labels_.size();
    }

  private:
    struct Hash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view sv) const
        {
            return std::hash<std::string_view>{}(sv);
        }
    };
    struct Eq
    {
        using is_transparent = void;
        bool
        operator()(std::string_view a, std::string_view b) const
        {
            return a == b;
        }
    };

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::uint32_t, Hash, Eq> ids_;

    /** id -> key in ids_ (node-stable, so the pointers never move). */
    std::deque<const std::string *> labels_;
};

} // namespace babol::obs

#endif // BABOL_OBS_INTERNER_HH
