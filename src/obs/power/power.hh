/**
 * @file
 * Per-state power/energy accounting riding the simulator's own timing.
 *
 * Every state the simulator already times — LUN array ops (tR / tPROG /
 * tBERS), bus cmd/addr cycles and data bursts at the active data rate,
 * soft-controller CPU busy windows, DRAM row activity — deposits energy
 * into a per-component Meter when the state *ends*, following Olivier
 * et al.'s unified performance+power NAND model: energy is power ×
 * the duration the timing model already computed, so the power model
 * adds no events and perturbs nothing.
 *
 * Units: integer femtojoules throughout. Ticks are picoseconds, so
 * 1 mW sustained for 1 tick is exactly 1 fJ — energy integration is
 * exact integer arithmetic (fJ = mW × ticks) and average power over a
 * window is the exact integer division fJ / ticks = mW. A uint64_t
 * femtojoule counter holds ~18.4 kJ, far beyond any simulated run.
 * Integer addition is associative and commutative, so per-shard charge
 * streams merged at epoch barriers produce byte-identical totals at
 * any worker-thread count.
 *
 * Conservation invariant (checked by the auditor's Power rule): the
 * model's rail total equals the sum of every live meter's active
 * energy plus the energy retired by destroyed meters, and each meter's
 * total equals the sum of its per-state slots.
 */

#ifndef BABOL_OBS_POWER_POWER_HH
#define BABOL_OBS_POWER_POWER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace babol::obs::audit {
class Auditor;
}

namespace babol::obs::power {

class Meter;
class PowerGovernor;

/**
 * Datasheet-style power figures. The defaults are plausible for a
 * 3.3 V TLC part with an NV-DDR2 interface and a small embedded core —
 * the *relative* J/IO of controller flavours is the experiment; the
 * absolute scale is configurable.
 */
struct PowerParams
{
    // NAND array states (per LUN), in mW.
    std::uint32_t lunReadMw = 80;     //!< tR sensing
    std::uint32_t lunProgramMw = 115; //!< tPROG
    std::uint32_t lunEraseMw = 100;   //!< tBERS
    std::uint32_t lunMiscMw = 30;     //!< reset / feature ops
    std::uint32_t lunIdleMw = 1;      //!< standby (CE# high)

    // Channel bus (per channel), in mW.
    std::uint32_t busCmdMw = 15;       //!< command/address latch cycles
    std::uint32_t busSdrXferMw = 40;   //!< data burst, SDR
    std::uint32_t busDdrXferMwPer100MT = 60; //!< data burst, NV-DDR2
    std::uint32_t busIdleMw = 2;       //!< bus parked

    // Soft-controller CPU, in µW per MHz (integer so a 150 MHz
    // MicroBlaze and a 1 GHz core both stay exact).
    std::uint32_t cpuActiveUwPerMhz = 200;
    std::uint32_t cpuIdleUwPerMhz = 20;

    // Staging DRAM.
    std::uint32_t dramPjPerByte = 40;  //!< access energy incl. I/O
    std::uint32_t dramStandbyMw = 60;  //!< self-refresh floor

    /** Data-burst power for the given interface mode/rate. */
    std::uint32_t
    busXferMw(bool ddr, std::uint32_t rate_mt) const
    {
        if (!ddr)
            return busSdrXferMw;
        return busDdrXferMwPer100MT * rate_mt / 100;
    }
};

/** Rolling-window power budget enforced per channel controller. */
struct GovernorConfig
{
    std::uint64_t capMw = 0; //!< 0 = governor disabled
    Tick window = 500 * ticks::perUs;
    Tick idlePeriod = 200 * ticks::perUs;
};

/**
 * Process-wide power model: parameters, the rail-total accumulator,
 * and the registry of live meters/governors. Like the fault engine,
 * device configs carry a `PowerModel *` (nullptr = the process
 * default), so every layer resolves the same model with no extra
 * constructor plumbing. Meters latch `enabled()` at construction:
 * enable the model *before* building the device, and a disabled
 * model's meters are inert bools on the hot path.
 */
class PowerModel
{
  public:
    PowerModel();
    ~PowerModel();

    PowerModel(const PowerModel &) = delete;
    PowerModel &operator=(const PowerModel &) = delete;

    /** The process-default model. */
    static PowerModel &instance();

    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }
    void
    enable(const PowerParams &p)
    {
        params_ = p;
        enabled_ = true;
    }
    /** For tests: later-built meters become inert (existing meters
     *  keep their latched state). */
    void disable() { enabled_ = false; }

    const PowerParams &params() const { return params_; }

    void setGovernorConfig(GovernorConfig g) { governorCfg_ = g; }
    const GovernorConfig &governorConfig() const { return governorCfg_; }

    /** Total energy ever charged through this model's meters,
     *  including meters that have since been destroyed. */
    std::uint64_t
    railTotalFj() const
    {
        return railTotalFj_.load(std::memory_order_relaxed);
    }

    /** Energy carried by meters that have been destroyed. */
    std::uint64_t
    retiredFj() const
    {
        return retiredFj_.load(std::memory_order_relaxed);
    }

    /** Σ live meters' active (state-charged) energy. */
    std::uint64_t liveActiveFj() const;

    /** Σ live meters' idle/standby energy up to their queues' now(). */
    std::uint64_t liveIdleFj() const;

    /** Everything: rail total (active, incl. retired) + live idle. */
    std::uint64_t grandTotalFj() const { return railTotalFj() + liveIdleFj(); }

    /**
     * Like grandTotalFj() but with live meters' idle integrated to the
     * caller-supplied wall tick instead of each meter's own queue time.
     * Deltas of this at workload boundaries give per-phase energy that
     * is independent of where shard clocks happened to park.
     */
    std::uint64_t grandTotalFjAt(Tick wall) const;

    /** Rolled-up stats of governors that were destroyed. */
    std::uint64_t retiredThrottleWindows() const { return retiredWindows_; }
    Tick retiredThrottledTicks() const { return retiredThrottledTicks_; }

    /** Throttle windows opened across live + retired governors. */
    std::uint64_t throttleWindowsTotal() const;
    Tick throttledTicksTotal() const;

    /**
     * Verify the conservation invariant; on success returns true, on
     * failure fills @p detail with the mismatching figures.
     */
    bool conservationOk(std::string *detail = nullptr) const;

    /** Power-summary JSON: per-rail slot energies, governor stats,
     *  conservation figures. Meters render name-sorted. */
    void writeJson(std::ostream &os) const;

    /**
     * Auditor hook: report a Check::Power diagnostic on every live
     * model whose conservation invariant fails. Called from
     * Auditor::finish().
     */
    static void auditAll(audit::Auditor &aud);

  private:
    friend class Meter;
    friend class PowerGovernor;

    void addRail(std::uint64_t fj)
    {
        railTotalFj_.fetch_add(fj, std::memory_order_relaxed);
    }
    void registerMeter(Meter *m);
    void unregisterMeter(Meter *m);
    void retire(const Meter &m);
    void registerGovernor(PowerGovernor *g);
    void unregisterGovernor(PowerGovernor *g);
    void retireGovernor(const PowerGovernor &g);

    bool enabled_ = false;
    PowerParams params_;
    GovernorConfig governorCfg_;
    std::atomic<std::uint64_t> railTotalFj_{0};
    std::atomic<std::uint64_t> retiredFj_{0};
    std::uint64_t retiredWindows_ = 0;
    Tick retiredThrottledTicks_ = 0;

    /** Guards the registries only; construction/destruction happens on
     *  the main thread (or inside a fleet member), never on the charge
     *  hot path. */
    mutable std::mutex mu_;
    std::vector<Meter *> meters_;
    std::vector<PowerGovernor *> governors_;
};

/** Resolve a config's model pointer (nullptr = the process default). */
inline PowerModel &
modelOf(PowerModel *p)
{
    return p ? *p : PowerModel::instance();
}

/**
 * One power rail: a component's per-state energy accumulators plus its
 * standby floor. At most four named state slots; charges are relaxed
 * atomics because the DRAM meter is shared by every channel shard
 * (each counter's final value is the same sum in any order).
 *
 * Idle energy is derived lazily — `(now − Σ active ticks) × idleMw` —
 * so an idle component costs nothing to account for.
 */
class Meter
{
  public:
    static constexpr std::size_t kMaxSlots = 4;

    Meter(PowerModel *model, EventQueue &eq, std::string rail,
          std::initializer_list<const char *> slots, std::uint32_t idle_mw);
    ~Meter();

    Meter(const Meter &) = delete;
    Meter &operator=(const Meter &) = delete;

    /** Latched at construction; the whole hot path hides behind it. */
    bool enabled() const { return enabled_; }

    /** The owning model's parameters (valid only when enabled). */
    const PowerParams &params() const { return model_->params(); }

    /** Power-governor to notify of charges (throttle accounting). */
    void setGovernor(PowerGovernor *gov) { gov_ = gov; }
    PowerGovernor *governor() const { return gov_; }

    /**
     * Deposit @p mw sustained over [t0, t1] into @p slot: the common
     * one-state-ended charge. Equivalent to chargeEnergy + noteActive.
     */
    void
    charge(std::size_t slot, Tick t0, Tick t1, std::uint64_t mw)
    {
        if (!enabled_)
            return;
        const std::uint64_t fj = mw * (t1 - t0);
        chargeEnergy(slot, fj);
        noteActive(t0, t1, fj);
    }

    /** Energy-only deposit (no occupancy): callers that split one
     *  busy window across slots pair this with one noteActive. */
    void
    chargeEnergy(std::size_t slot, std::uint64_t fj)
    {
        if (!enabled_ || fj == 0)
            return;
        slotFj_[slot].fetch_add(fj, std::memory_order_relaxed);
        totalFj_.fetch_add(fj, std::memory_order_relaxed);
        model_->addRail(fj);
    }

    /**
     * Mark [t0, t1] as active (excluded from idle), emit the Perfetto
     * counter-rail samples for the window, and notify the governor.
     */
    void noteActive(Tick t0, Tick t1, std::uint64_t fj);

    std::uint64_t
    slotFj(std::size_t slot) const
    {
        return slotFj_[slot].load(std::memory_order_relaxed);
    }

    /** Σ slots — every joule this rail charged. */
    std::uint64_t
    activeFj() const
    {
        return totalFj_.load(std::memory_order_relaxed);
    }

    /** Ticks spent in charged states. */
    std::uint64_t
    activeTicks() const
    {
        return activeTicks_.load(std::memory_order_relaxed);
    }

    /** Standby energy up to the component's queue time (saturating:
     *  overlapping foreground/background windows can make active time
     *  exceed wall time on a cache-op LUN). */
    std::uint64_t idleFj() const;

    /** Standby energy integrated to an explicit wall tick. */
    std::uint64_t idleFjAt(Tick wall) const;

    std::uint64_t grandFj() const { return activeFj() + idleFj(); }

    const std::string &rail() const { return rail_; }
    std::size_t slotCount() const { return slotCount_; }
    const char *slotName(std::size_t i) const { return slotNames_[i]; }
    std::uint32_t idleMw() const { return idleMw_; }

  private:
    PowerModel *model_ = nullptr;
    EventQueue &eq_;
    std::string rail_;
    std::array<const char *, kMaxSlots> slotNames_{};
    std::size_t slotCount_ = 0;
    std::uint32_t idleMw_ = 0;
    bool enabled_ = false;
    PowerGovernor *gov_ = nullptr;

    std::array<std::atomic<std::uint64_t>, kMaxSlots> slotFj_{};
    std::atomic<std::uint64_t> totalFj_{0};
    std::atomic<std::uint64_t> activeTicks_{0};

    std::uint32_t ctrTrack_ = 0; //!< interned counter-rail name

    /** Registered only when enabled, so a disabled model leaves the
     *  registry (and every snapshot) untouched. */
    std::optional<MetricsGroup> metrics_;
};

/**
 * Rolling-window power-budget governor — the thermal-throttle actuator.
 * One per channel controller, fed by that channel's meters (LUNs, bus,
 * controller CPU), all of which live on the channel's shard: its state
 * advances in deterministic simulated-time order, so throttle windows
 * land identically at any worker-thread count.
 *
 * The window is tracked in 16 coarse buckets; when the energy observed
 * over the trailing window exceeds cap × window, the governor opens a
 * forced idle window [now, now + idlePeriod]. The channel controller
 * defers request admission while throttled and drains on release.
 */
class PowerGovernor
{
  public:
    static constexpr std::size_t kBuckets = 16;

    PowerGovernor(EventQueue &eq, std::string name, PowerModel &model);
    ~PowerGovernor();

    PowerGovernor(const PowerGovernor &) = delete;
    PowerGovernor &operator=(const PowerGovernor &) = delete;

    /** Meters report every charge here (via Meter::noteActive). */
    void addEnergy(Tick at, std::uint64_t fj);

    bool throttled(Tick now) const { return now < throttleUntil_; }
    Tick throttledUntil() const { return throttleUntil_; }

    /** Called when a forced idle window expires (controller drain). */
    void setOnRelease(std::function<void()> fn) { onRelease_ = std::move(fn); }

    const std::string &name() const { return name_; }
    std::uint64_t capMw() const { return cfg_.capMw; }
    const std::vector<std::pair<Tick, Tick>> &windows() const
    {
        return windows_;
    }
    Tick throttledTicks() const { return throttledTicks_; }

  private:
    struct Bucket
    {
        std::uint64_t index = 0;
        std::uint64_t fj = 0;
    };

    EventQueue &eq_;
    std::string name_;
    PowerModel &model_;
    GovernorConfig cfg_;
    Tick bucketWidth_ = 1;
    std::array<Bucket, kBuckets> buckets_{};
    Tick throttleUntil_ = 0;
    Tick throttledTicks_ = 0;
    std::vector<std::pair<Tick, Tick>> windows_;
    std::function<void()> onRelease_;
    EventHandle releaseEv_;
    std::uint32_t obsTrack_ = 0;
    std::uint32_t throttleLabel_ = 0;
};

} // namespace babol::obs::power

#endif // BABOL_OBS_POWER_POWER_HH
