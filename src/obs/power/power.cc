#include "power.hh"

#include <algorithm>
#include <ostream>

#include "obs/audit/auditor.hh"
#include "obs/hub.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace babol::obs::power {

// ---------------------------------------------------------------------
// PowerModel

namespace {

/** Every live model, for the end-of-run conservation audit. */
std::mutex &
modelsMu()
{
    static std::mutex mu;
    return mu;
}

std::vector<const PowerModel *> &
models()
{
    static std::vector<const PowerModel *> v;
    return v;
}

} // namespace

PowerModel::PowerModel()
{
    std::lock_guard<std::mutex> lk(modelsMu());
    models().push_back(this);
}

PowerModel::~PowerModel()
{
    std::lock_guard<std::mutex> lk(modelsMu());
    auto &v = models();
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

PowerModel &
PowerModel::instance()
{
    static PowerModel model;
    return model;
}

void
PowerModel::registerMeter(Meter *m)
{
    std::lock_guard<std::mutex> lk(mu_);
    meters_.push_back(m);
}

void
PowerModel::unregisterMeter(Meter *m)
{
    std::lock_guard<std::mutex> lk(mu_);
    meters_.erase(std::remove(meters_.begin(), meters_.end(), m),
                  meters_.end());
}

void
PowerModel::retire(const Meter &m)
{
    retiredFj_.fetch_add(m.activeFj(), std::memory_order_relaxed);
}

void
PowerModel::registerGovernor(PowerGovernor *g)
{
    std::lock_guard<std::mutex> lk(mu_);
    governors_.push_back(g);
}

void
PowerModel::unregisterGovernor(PowerGovernor *g)
{
    std::lock_guard<std::mutex> lk(mu_);
    governors_.erase(std::remove(governors_.begin(), governors_.end(), g),
                     governors_.end());
}

void
PowerModel::retireGovernor(const PowerGovernor &g)
{
    std::lock_guard<std::mutex> lk(mu_);
    retiredWindows_ += g.windows().size();
    retiredThrottledTicks_ += g.throttledTicks();
}

std::uint64_t
PowerModel::liveActiveFj() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t sum = 0;
    for (const Meter *m : meters_)
        sum += m->activeFj();
    return sum;
}

std::uint64_t
PowerModel::liveIdleFj() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t sum = 0;
    for (const Meter *m : meters_)
        sum += m->idleFj();
    return sum;
}

std::uint64_t
PowerModel::grandTotalFjAt(Tick wall) const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t idle = 0;
    for (const Meter *m : meters_)
        idle += m->idleFjAt(wall);
    return railTotalFj() + idle;
}

std::uint64_t
PowerModel::throttleWindowsTotal() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = retiredWindows_;
    for (const PowerGovernor *g : governors_)
        n += g->windows().size();
    return n;
}

Tick
PowerModel::throttledTicksTotal() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Tick t = retiredThrottledTicks_;
    for (const PowerGovernor *g : governors_)
        t += g->throttledTicks();
    return t;
}

bool
PowerModel::conservationOk(std::string *detail) const
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const Meter *m : meters_) {
            std::uint64_t slots = 0;
            for (std::size_t i = 0; i < m->slotCount(); ++i)
                slots += m->slotFj(i);
            if (slots != m->activeFj()) {
                if (detail)
                    *detail = strfmt("rail %s: slot sum %llu fJ != rail "
                                     "total %llu fJ",
                                     m->rail().c_str(),
                                     static_cast<unsigned long long>(slots),
                                     static_cast<unsigned long long>(
                                         m->activeFj()));
                return false;
            }
        }
    }
    const std::uint64_t components = liveActiveFj() + retiredFj();
    if (components != railTotalFj()) {
        if (detail)
            *detail = strfmt("component sum %llu fJ != rail total %llu fJ",
                             static_cast<unsigned long long>(components),
                             static_cast<unsigned long long>(railTotalFj()));
        return false;
    }
    return true;
}

void
PowerModel::writeJson(std::ostream &os) const
{
    std::vector<const Meter *> meters;
    std::vector<const PowerGovernor *> governors;
    {
        std::lock_guard<std::mutex> lk(mu_);
        meters.assign(meters_.begin(), meters_.end());
        governors.assign(governors_.begin(), governors_.end());
    }
    std::sort(meters.begin(), meters.end(),
              [](const Meter *a, const Meter *b) {
                  return a->rail() < b->rail();
              });
    std::sort(governors.begin(), governors.end(),
              [](const PowerGovernor *a, const PowerGovernor *b) {
                  return a->name() < b->name();
              });

    os << "{\n  \"enabled\": " << (enabled_ ? "true" : "false") << ",\n";
    os << "  \"rail_total_fj\": " << railTotalFj() << ",\n";
    os << "  \"retired_fj\": " << retiredFj() << ",\n";
    os << "  \"grand_total_fj\": " << grandTotalFj() << ",\n";
    os << "  \"rails\": {";
    bool first = true;
    for (const Meter *m : meters) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << m->rail() << "\": {\"active_fj\": "
           << m->activeFj() << ", \"idle_fj\": " << m->idleFj();
        for (std::size_t i = 0; i < m->slotCount(); ++i)
            os << ", \"" << m->slotName(i) << "_fj\": " << m->slotFj(i);
        os << "}";
    }
    os << "\n  },\n  \"governors\": {";
    first = true;
    for (const PowerGovernor *g : governors) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << g->name() << "\": {\"cap_mw\": " << g->capMw()
           << ", \"throttle_windows\": " << g->windows().size()
           << ", \"throttled_us\": " << ticks::toUs(g->throttledTicks())
           << "}";
    }
    os << "\n  }\n}\n";
}

void
PowerModel::auditAll(audit::Auditor &aud)
{
    std::vector<const PowerModel *> snapshot;
    {
        std::lock_guard<std::mutex> lk(modelsMu());
        snapshot = models();
    }
    for (const PowerModel *m : snapshot) {
        if (!m->enabled())
            continue;
        std::string detail;
        if (!m->conservationOk(&detail))
            aud.report(audit::Check::Power, "power.conservation", "power",
                       0, detail);
    }
}

// ---------------------------------------------------------------------
// Meter

Meter::Meter(PowerModel *model, EventQueue &eq, std::string rail,
             std::initializer_list<const char *> slots,
             std::uint32_t idle_mw)
    : model_(&modelOf(model)), eq_(eq), rail_(std::move(rail)),
      idleMw_(idle_mw), enabled_(modelOf(model).enabled())
{
    babol_assert(slots.size() <= kMaxSlots, "meter %s: too many slots",
                 rail_.c_str());
    for (const char *s : slots)
        slotNames_[slotCount_++] = s;
    if (!enabled_)
        return;
    ctrTrack_ = interner().intern(rail_ + ".mW");
    metrics_.emplace(metrics(), rail_ + ".power");
    for (std::size_t i = 0; i < slotCount_; ++i)
        metrics_->value(std::string(slotNames_[i]) + "_fj",
                        [this, i] { return slotFj(i); });
    metrics_->value("active_fj", [this] { return activeFj(); });
    metrics_->value("idle_fj", [this] { return idleFj(); });
    metrics_->value("total_fj", [this] { return grandFj(); });
    metrics_->value("avg_mw", [this] {
        const Tick now = eq_.now();
        return now ? grandFj() / now : 0;
    });
    model_->registerMeter(this);
}

Meter::~Meter()
{
    if (!enabled_)
        return;
    model_->retire(*this);
    model_->unregisterMeter(this);
}

void
Meter::noteActive(Tick t0, Tick t1, std::uint64_t fj)
{
    if (!enabled_ || t1 <= t0)
        return;
    const Tick dur = t1 - t0;
    activeTicks_.fetch_add(dur, std::memory_order_relaxed);
    TraceRecorder &tr = trace();
    if (tr.enabled()) {
        // Counter-rail samples: power rises to idle + the window's mean
        // at t0 and falls back to the standby floor at t1.
        tr.counter(ctrTrack_, ctrTrack_, t0, idleMw_ + fj / dur);
        tr.counter(ctrTrack_, ctrTrack_, t1, idleMw_);
    }
    if (gov_)
        gov_->addEnergy(t1, fj);
}

std::uint64_t
Meter::idleFj() const
{
    return idleFjAt(eq_.now());
}

std::uint64_t
Meter::idleFjAt(Tick wall) const
{
    if (!enabled_)
        return 0;
    const std::uint64_t active = activeTicks();
    if (active >= wall)
        return 0;
    return (wall - active) * idleMw_;
}

// ---------------------------------------------------------------------
// PowerGovernor

PowerGovernor::PowerGovernor(EventQueue &eq, std::string name,
                             PowerModel &model)
    : eq_(eq), name_(std::move(name)), model_(model),
      cfg_(model.governorConfig())
{
    babol_assert(cfg_.capMw > 0, "governor %s: no power cap configured",
                 name_.c_str());
    bucketWidth_ = std::max<Tick>(cfg_.window / kBuckets, 1);
    obsTrack_ = interner().intern(name_);
    throttleLabel_ = interner().intern("power.throttle");
    model_.registerGovernor(this);
}

PowerGovernor::~PowerGovernor()
{
    releaseEv_.cancel();
    model_.retireGovernor(*this);
    model_.unregisterGovernor(this);
}

void
PowerGovernor::addEnergy(Tick at, std::uint64_t fj)
{
    const std::uint64_t idx = at / bucketWidth_;
    Bucket &b = buckets_[idx % kBuckets];
    if (b.index != idx) {
        b.index = idx;
        b.fj = 0;
    }
    b.fj += fj;

    if (throttled(at))
        return;

    // Energy observed over the trailing window vs. the budget
    // (cap[mW] × window[ticks] = budget[fJ] — exact).
    std::uint64_t windowFj = 0;
    for (const Bucket &w : buckets_)
        if (w.index + kBuckets > idx)
            windowFj += w.fj;
    if (windowFj <= cfg_.capMw * static_cast<std::uint64_t>(cfg_.window))
        return;

    const Tick until = at + cfg_.idlePeriod;
    throttleUntil_ = until;
    throttledTicks_ += cfg_.idlePeriod;
    windows_.emplace_back(at, until);
    trace().complete(obsTrack_, throttleLabel_, at, until, kNoSpan,
                     windows_.size());
    // Absolute: @p at is the *end* of the charged window, which can sit
    // ahead of now() (bus bursts and CPU quanta charge on dispatch), and
    // the release must not fire while the window is still open.
    releaseEv_.cancel();
    releaseEv_ = eq_.schedule(until, [this] {
        if (onRelease_)
            onRelease_();
    }, "power.throttle.release");
}

} // namespace babol::obs::power
