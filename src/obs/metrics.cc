#include "metrics.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace babol::obs {

namespace {

/** Binary search into a name-sorted vector. */
template <typename T>
const T *
findByName(const std::vector<T> &v, std::string_view name)
{
    auto it = std::lower_bound(v.begin(), v.end(), name,
                               [](const T &a, std::string_view n) {
                                   return a.name < n;
                               });
    if (it == v.end() || it->name != name)
        return nullptr;
    return &*it;
}

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace

const MetricsSnapshot::Scalar *
MetricsSnapshot::findScalar(std::string_view name) const
{
    return findByName(scalars, name);
}

const MetricsSnapshot::Dist *
MetricsSnapshot::findDist(std::string_view name) const
{
    return findByName(dists, name);
}

std::uint64_t
MetricsSnapshot::scalar(std::string_view name, std::uint64_t fallback) const
{
    const Scalar *s = findScalar(name);
    return s ? s->value : fallback;
}

MetricsRegistry::Token
MetricsRegistry::insert(std::string name, Entry entry)
{
    std::lock_guard<std::mutex> lk(mu_);
    entry.serial = nextSerial_++;
    Token tok{name, entry.serial};
    entries_.insert_or_assign(std::move(name), std::move(entry));
    return tok;
}

MetricsRegistry::Token
MetricsRegistry::addCounter(std::string name, const Counter *counter)
{
    Entry e;
    e.kind = Entry::Kind::Counter;
    e.counter = counter;
    return insert(std::move(name), std::move(e));
}

MetricsRegistry::Token
MetricsRegistry::addValue(std::string name, ValueFn fn)
{
    Entry e;
    e.kind = Entry::Kind::Value;
    e.fn = std::move(fn);
    return insert(std::move(name), std::move(e));
}

MetricsRegistry::Token
MetricsRegistry::addDistribution(std::string name, const Distribution *dist)
{
    Entry e;
    e.kind = Entry::Kind::Dist;
    e.dist = dist;
    return insert(std::move(name), std::move(e));
}

void
MetricsRegistry::remove(const Token &token)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(token.name);
    if (it != entries_.end() && it->second.serial == token.serial)
        entries_.erase(it);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    MetricsSnapshot snap;
    for (const auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case Entry::Kind::Counter:
            snap.scalars.push_back({name, entry.counter->value()});
            break;
          case Entry::Kind::Value:
            snap.scalars.push_back({name, entry.fn()});
            break;
          case Entry::Kind::Dist: {
            const Distribution &d = *entry.dist;
            MetricsSnapshot::Dist out;
            out.name = name;
            out.count = d.count();
            out.sum = d.sum();
            out.mean = d.mean();
            out.min = d.min();
            out.max = d.max();
            // Histogram percentiles see every sample (the kept-sample
            // estimate degrades once long runs start subsampling).
            out.p50 = d.histPercentile(50);
            out.p95 = d.histPercentile(95);
            out.p99 = d.histPercentile(99);
            out.p999 = d.histPercentile(99.9);
            snap.dists.push_back(std::move(out));
            break;
          }
        }
    }
    // entries_ is an ordered map, so both vectors come out name-sorted.
    return snap;
}

MetricsSnapshot
MetricsRegistry::delta(const MetricsSnapshot &later,
                       const MetricsSnapshot &earlier)
{
    MetricsSnapshot out;
    out.simTicks = later.simTicks;
    out.scalars.reserve(later.scalars.size());
    for (const auto &s : later.scalars) {
        const auto *prev = earlier.findScalar(s.name);
        const std::uint64_t before = prev ? prev->value : 0;
        out.scalars.push_back(
            {s.name, s.value >= before ? s.value - before : 0});
    }
    out.dists = later.dists;
    return out;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    writeJson(os, snapshot());
}

void
MetricsRegistry::writeJson(std::ostream &os, const MetricsSnapshot &snap)
{
    os << "{\n  \"sim_ticks\": " << snap.simTicks << ",\n";
    os << "  \"scalars\": {";
    bool first = true;
    for (const auto &s : snap.scalars) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, s.name);
        os << ": " << s.value;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"distributions\": {";
    first = true;
    for (const auto &d : snap.dists) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, d.name);
        os << ": {\"count\": " << d.count << ", \"sum\": ";
        writeJsonDouble(os, d.sum);
        os << ", \"mean\": ";
        writeJsonDouble(os, d.mean);
        os << ", \"min\": ";
        writeJsonDouble(os, d.min);
        os << ", \"max\": ";
        writeJsonDouble(os, d.max);
        os << ", \"p50\": ";
        writeJsonDouble(os, d.p50);
        os << ", \"p95\": ";
        writeJsonDouble(os, d.p95);
        os << ", \"p99\": ";
        writeJsonDouble(os, d.p99);
        os << ", \"p999\": ";
        writeJsonDouble(os, d.p999);
        os << '}';
    }
    os << (first ? "}\n" : "\n  }\n");
    os << "}\n";
}

} // namespace babol::obs
