/**
 * @file
 * Perfetto / Chrome trace_event JSON exporter for the trace recorder.
 *
 * Emits the "JSON Array Format" object ({"traceEvents": [...]}) that
 * both chrome://tracing and ui.perfetto.dev load directly. Tracks map
 * to threads of one synthetic process; Complete records become "X"
 * events, Begin/End pairs are folded into "X" events at export time
 * (exact durations, no b/e nesting ambiguity), and unmatched Begins —
 * spans still open when the run stopped or whose End fell off the ring
 * — degrade to "i" instants so nothing is silently dropped.
 *
 * Timestamps: trace_event wants microseconds; ticks are picoseconds, so
 * ts/dur are emitted as fractional µs with ps resolution preserved.
 */

#ifndef BABOL_OBS_PERFETTO_HH
#define BABOL_OBS_PERFETTO_HH

#include <iosfwd>

#include "recorder.hh"

namespace babol::obs {

void writePerfettoJson(std::ostream &os, const TraceRecorder &rec);

} // namespace babol::obs

#endif // BABOL_OBS_PERFETTO_HH
