/**
 * @file
 * Built-in ONFI AC-timing rule.
 *
 * Validates, per channel and CE line, the category-2 timing parameters
 * of the paper's §IV-B against the cycle-level view of every executed
 * segment:
 *
 *  - tWB:  no bus activity to a CE between a busy-starting cycle (a
 *          confirm command latch, or a segment-ending data-in burst)
 *          and tWB later — the window in which R/B# transitions;
 *  - tADL/tCCS: a data-in burst must not begin sooner than tADL after
 *          an address cycle (tCCS after a command cycle);
 *  - tWHR/tCCS: a data-out burst must not begin sooner than tWHR after
 *          a command/address cycle (tCCS after an E0h column-change
 *          confirm);
 *  - tRHW: a command/address cycle must not follow the last data-out
 *          transfer sooner than tRHW (read-to-write turnaround), both
 *          within a segment and across consecutive segments on a CE.
 *
 * The thresholds come from the bus's active TimingParams, or from the
 * Auditor::Config::datasheet override — the latter catches a package
 * preset whose μFSM-visible timings were (mis)configured shorter than
 * the part's datasheet allows.
 */

#ifndef BABOL_OBS_AUDIT_ONFI_RULES_HH
#define BABOL_OBS_AUDIT_ONFI_RULES_HH

#include <array>
#include <map>
#include <string>

#include "auditor.hh"

namespace babol::obs::audit {

class AcTimingRule : public Rule
{
  public:
    const char *name() const override { return "onfi.ac-timing"; }
    void onSegment(const SegmentView &seg, Auditor &aud) override;

  private:
    /** Cross-segment state of one CE line. */
    struct CeState
    {
        Tick busyStartEnd = 0; //!< end of the last busy-starting cycle
        bool haveBusyStart = false;
        Tick dataOutEnd = 0; //!< last data-out transfer end (tRHW origin)
        bool haveDataOut = false;
    };

    void checkCe(const SegmentView &seg, std::uint32_t ce, CeState &st,
                 const nand::TimingParams &t, Auditor &aud);

    std::map<std::string, std::array<CeState, 32>, std::less<>> state_;
    Tick lastStart_ = 0; //!< epoch guard: fresh EventQueues restart at 0
};

} // namespace babol::obs::audit

#endif // BABOL_OBS_AUDIT_ONFI_RULES_HH
