/**
 * @file
 * The online ONFI conformance auditor — a software logic analyzer.
 *
 * The paper validates BABOL by pointing a Keysight analyzer at the real
 * bus and checking the waveforms against the datasheet's AC timings.
 * The Auditor is that instrument's simulation twin: inline taps (the
 * ChannelBus describes every executed segment cycle by cycle; the LUN
 * and ExecUnit report guard events) feed a registry of rules that
 * validate timing and protocol *while the simulation runs*, and an
 * end-of-run pass checks cross-layer span conservation over the shared
 * trace ring.
 *
 * Two operating modes:
 *  - sanitizer (BABOL_AUDIT=1, or arm() with throwOnDiagnostic=true):
 *    the first violation panics, flight-recorder dump on stderr —
 *    a protocol sanitizer alongside ASan for CI;
 *  - collector (--audit, throwOnDiagnostic=false): diagnostics are
 *    collected and reported at the end; harnesses exit non-zero when
 *    any were recorded.
 *
 * The auditor is process-wide (like the obs Hub) and deliberately has
 * no link dependency on the nand/chan libraries: it consumes only
 * header-only PODs (TimingParams, CycleType) so babol_obs stays at the
 * bottom of the library stack.
 *
 * Sharded runs: the stateful rules (per-CE AC timing history) and the
 * flight dumps are only coherent within one channel, so the sharded
 * engine gives every shard a detached Auditor (makeShard) mirroring
 * the process instance's armed config, installs it on the worker
 * thread via current()/exchangeCurrent while the shard runs, and folds
 * segment counts and diagnostics back with absorb() at the end. A
 * channel lives wholly on one shard, so each rule still sees its
 * complete, ordered segment stream. The span-conservation pass
 * (finish) runs once, on the merged trace.
 */

#ifndef BABOL_OBS_AUDIT_AUDITOR_HH
#define BABOL_OBS_AUDIT_AUDITOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "diagnostic.hh"
#include "nand/timing.hh"
#include "obs/span.hh"
#include "sim/types.hh"

namespace babol::obs::audit {

/** One command/address latch cycle or data burst within a segment. */
struct CycleView
{
    nand::CycleType type = nand::CycleType::CmdLatch;
    std::uint8_t value = 0;   //!< the byte latched (CmdLatch/AddrLatch)
    std::uint32_t bytes = 0;  //!< burst length (DataIn/DataOut)
    Tick start = 0;           //!< first edge of the cycle/burst
    Tick end = 0;             //!< bus occupancy end (incl. strobe postamble)
    Tick dataEnd = 0;         //!< last data transfer (end minus postamble)
};

/** The auditor's view of one executed bus segment. */
struct SegmentView
{
    std::string_view channel; //!< bus name (one track per channel)
    std::string_view label;   //!< segment label ("READ.cmd", ...)
    std::uint32_t ceMask = 0;
    Tick start = 0; //!< segment start (CE setup begins here)
    Tick end = 0;   //!< bus release (includes postDelay, e.g. tWB)
    SpanId span = kNoSpan;   //!< the segment's own span (if tracing)
    SpanId parent = kNoSpan; //!< the controller op's span (if any)
    const nand::TimingParams *timing = nullptr; //!< active bus timing
    std::vector<CycleView> cycles;
};

class Auditor;

/** One pluggable conformance rule (datasheet-specific rules register
 *  through Auditor::addRule). */
class Rule
{
  public:
    virtual ~Rule() = default;
    virtual const char *name() const = 0;
    /** Called for every executed segment, in issue order. */
    virtual void onSegment(const SegmentView &seg, Auditor &aud) = 0;
};

class Auditor
{
  public:
    struct Config
    {
        /** Panic (SimPanic) on the first diagnostic — sanitizer mode. */
        bool throwOnDiagnostic = true;

        /** Turn on the shared trace ring so flight dumps have content. */
        bool enableTrace = false;

        /** Ring records rendered into each flight dump. */
        std::size_t flightRecords = 24;

        /** A short-control transaction waiting in the exec FIFO longer
         *  than this is reported as arbiter starvation. The default
         *  clears a FIFO's worth of worst-case erases. */
        Tick starvationBound = 20 * ticks::perMs;

        /** Audit against this datasheet instead of the bus's configured
         *  timing — catches a mis-configured (e.g. shortened) preset. */
        std::optional<nand::TimingParams> datasheet;
    };

    /** Process-wide instance; arms itself when BABOL_AUDIT is set. */
    static Auditor &instance();

    /** The auditor installed on this thread (the process instance by
     *  default) — what the inline taps resolve. */
    static Auditor &current();

    /** Install @p a as this thread's auditor; @return the previous
     *  binding (nullptr = the process instance). */
    static Auditor *exchangeCurrent(Auditor *a);

    /**
     * A detached auditor mirroring @p src's armed state and config
     * (built-in rules only — extra rules added to @p src are not
     * cloned). Never arms tracing by itself.
     */
    static std::unique_ptr<Auditor> makeShard(const Auditor &src);

    /** Fold a shard auditor's segment count and diagnostics into this
     *  one (deterministic when absorbed in shard order). */
    void absorb(Auditor &shard);

    /** True when taps should report (the hot-path check). */
    bool armed() const { return armed_; }

    /** Install the built-in rules and start auditing. Clears previous
     *  diagnostics and rule state. */
    void arm(Config cfg);
    void arm() { arm(Config{}); }
    void disarm();

    const Config &config() const { return cfg_; }

    /** Register an extra (e.g. datasheet-specific) rule. */
    void addRule(std::unique_ptr<Rule> rule);

    // --- Taps (called by the instrumented layers when armed) ---

    /** ChannelBus: one segment was put on the wires. */
    void tapSegment(const SegmentView &seg);

    /** ExecUnit: a transaction left the FIFO after waiting @p waited. */
    void tapFifoWait(std::string_view unit, std::string_view label,
                     Tick now, Tick waited);

    /**
     * Record a violation. In sanitizer mode this prints the flight dump
     * and panics; in collector mode the Diagnostic (with span context
     * and flight dump) is stored for the end-of-run report.
     *
     * @p suppressed marks the violation as expected fallout of an
     * injected fault (the caller consulted the fault engine): it is
     * stored tagged for the report but never panics and never fails
     * the run.
     */
    void report(Check check, std::string rule, std::string_view where,
                Tick at, std::string message, bool suppressed = false);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** Diagnostics that actually count against the run. */
    std::size_t unsuppressedCount() const;

    void clearDiagnostics() { diags_.clear(); }

    /** Segments audited since arm() (for "audit clean" reporting). */
    std::uint64_t segmentsAudited() const { return segments_; }

    /**
     * End-of-run conservation pass over the shared trace ring: every
     * opened span closes, every op span has at least one bus segment,
     * nesting is well-formed. Skipped (with a note) when the ring
     * wrapped — conservation cannot be judged from a partial window.
     */
    void finish();

    /** Render the last N held ring records, logic-analyzer style. */
    std::string flightDump() const;

    /** Human-readable report of all collected diagnostics. */
    void writeReport(std::ostream &os) const;

  private:
    struct Detached
    {};

    Auditor();
    explicit Auditor(Detached) {}

    void installBuiltins();

    bool armed_ = false;
    Config cfg_;
    std::vector<std::unique_ptr<Rule>> rules_;
    std::vector<Diagnostic> diags_;
    std::uint64_t segments_ = 0;
};

inline Auditor &auditor() { return Auditor::current(); }

/** RAII: routes this thread's audit taps through @p a (nullptr = back
 *  to the process instance). */
class ScopedAuditor
{
  public:
    explicit ScopedAuditor(Auditor *a) : prev_(Auditor::exchangeCurrent(a))
    {}
    ~ScopedAuditor() { Auditor::exchangeCurrent(prev_); }

    ScopedAuditor(const ScopedAuditor &) = delete;
    ScopedAuditor &operator=(const ScopedAuditor &) = delete;

  private:
    Auditor *prev_;
};

} // namespace babol::obs::audit

#endif // BABOL_OBS_AUDIT_AUDITOR_HH
