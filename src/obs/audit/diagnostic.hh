/**
 * @file
 * Structured conformance diagnostics.
 *
 * A Diagnostic is the auditor's unit of output: which check family
 * tripped, which named rule, where (component name), when (tick), under
 * what span context, and a flight-recorder dump — the last stretch of
 * the shared trace ring rendered logic-analyzer style — so a violation
 * reads like the paper's Fig. 11 screenshot with the offending segment
 * at the bottom.
 */

#ifndef BABOL_OBS_AUDIT_DIAGNOSTIC_HH
#define BABOL_OBS_AUDIT_DIAGNOSTIC_HH

#include <string>

#include "obs/span.hh"
#include "sim/types.hh"

namespace babol::obs::audit {

/** The check families of the conformance auditor. */
enum class Check : std::uint8_t {
    AcTiming,     //!< ONFI AC timing (tWB, tWHR, tRHW, tADL, tCCS, floors)
    LunProtocol,  //!< command legality and sequencing at the die
    Channel,      //!< bus invariants (double-drive, CE overlap, starvation)
    Conservation, //!< cross-layer span accounting
    Power,        //!< energy conservation and throttle compliance
    Recovery,     //!< crash-consistency: acknowledged writes survive a
                  //!< remount, stale mappings never resurrect
    Reliability,  //!< media decay: no read acked straight from a dead
                  //!< die, rebuilds only from surviving stripe members
};

const char *toString(Check c);

struct Diagnostic
{
    Check check = Check::AcTiming;
    std::string rule;    //!< dotted rule name, e.g. "onfi.tWB"
    std::string where;   //!< component that observed it ("ssd.pkg0.lun0")
    std::string message; //!< human-readable detail
    Tick at = 0;         //!< simulated time of the violation
    SpanId span = kNoSpan; //!< ambient span context when it fired
    std::string flight;    //!< flight-recorder dump (rendered timeline)

    /** The violation fell inside an armed fault plan's suppression
     *  window: expected fallout of an injected fault, not a bug. Kept
     *  in the report for transparency but never fails a run. */
    bool suppressed = false;

    /** One-line summary (no flight dump). */
    std::string oneLine() const;
};

} // namespace babol::obs::audit

#endif // BABOL_OBS_AUDIT_DIAGNOSTIC_HH
