#include "onfi_rules.hh"

#include "nand/onfi.hh"
#include "sim/logging.hh"

namespace babol::obs::audit {

namespace {

/** Commands whose latch starts array work — tWB applies after them.
 *  Mirrors the μFSM confirm-command set (core/ufsm.cc). */
bool
isBusyStartCommand(std::uint8_t cmd)
{
    using namespace nand::opcode;
    switch (cmd) {
      case kRead2:
      case kReadCacheSeq:
      case kReadCacheEnd:
      case kReadMultiPlane:
      case kProgram2:
      case kProgramCache:
      case kProgramMultiPlane:
      case kErase2:
      case kReset:
      case kSynchronousReset:
      case kVendorSuspend:
      case kVendorResume:
      case kReadParamPage:
      case kReadUniqueId:
      case kGetFeatures:
        return true;
      default:
        return false;
    }
}

} // namespace

void
AcTimingRule::onSegment(const SegmentView &seg, Auditor &aud)
{
    if (!seg.timing)
        return;

    // A fresh EventQueue restarts simulated time at zero; drop stale
    // per-CE state so cross-segment gap checks never span two runs.
    if (seg.start < lastStart_)
        state_.clear();
    lastStart_ = seg.start;

    const nand::TimingParams &t =
        aud.config().datasheet ? *aud.config().datasheet : *seg.timing;

    auto it = state_.find(seg.channel);
    if (it == state_.end()) {
        it = state_.emplace(std::string(seg.channel),
                            std::array<CeState, 32>{}).first;
    }
    for (std::uint32_t ce = 0; ce < 32; ++ce) {
        if (seg.ceMask & (1u << ce))
            checkCe(seg, ce, it->second[ce], t, aud);
    }
}

void
AcTimingRule::checkCe(const SegmentView &seg, std::uint32_t ce, CeState &st,
                      const nand::TimingParams &t, Auditor &aud)
{
    using nand::CycleType;

    // --- Cross-segment gaps: this segment's first cycle vs. the
    //     previous busy-start / data-out on the same CE. ---
    if (!seg.cycles.empty()) {
        const CycleView &first = seg.cycles.front();
        if (st.haveBusyStart && first.start < st.busyStartEnd + t.tWb) {
            aud.report(
                Check::AcTiming, "onfi.tWB", seg.channel, first.start,
                strfmt("'%.*s' reaches CE%u %.1f ns after the "
                       "busy-starting cycle; tWB requires %.1f ns",
                       static_cast<int>(seg.label.size()), seg.label.data(),
                       ce, ticks::toNs(first.start - st.busyStartEnd),
                       ticks::toNs(t.tWb)));
        }
        if (st.haveDataOut &&
            (first.type == CycleType::CmdLatch ||
             first.type == CycleType::AddrLatch) &&
            first.start < st.dataOutEnd + t.tRhw) {
            aud.report(
                Check::AcTiming, "onfi.tRHW", seg.channel, first.start,
                strfmt("'%.*s' latches on CE%u %.1f ns after the last "
                       "data-out transfer; tRHW requires %.1f ns",
                       static_cast<int>(seg.label.size()), seg.label.data(),
                       ce, ticks::toNs(first.start - st.dataOutEnd),
                       ticks::toNs(t.tRhw)));
        }
    }

    // --- In-segment gaps, mirroring the μFSM pre-delay obligations. ---
    bool have_ca = false, ca_was_addr = false;
    std::uint8_t ca_cmd = 0;
    Tick ca_end = 0;
    bool have_do = false;
    Tick do_end = 0;
    for (const CycleView &c : seg.cycles) {
        switch (c.type) {
          case CycleType::CmdLatch:
          case CycleType::AddrLatch:
            if (have_do && c.start < do_end + t.tRhw) {
                aud.report(
                    Check::AcTiming, "onfi.tRHW", seg.channel, c.start,
                    strfmt("C/A cycle on CE%u %.1f ns after the last "
                           "data-out transfer; tRHW requires %.1f ns",
                           ce, ticks::toNs(c.start - do_end),
                           ticks::toNs(t.tRhw)));
            }
            have_ca = true;
            ca_end = c.end;
            ca_was_addr = c.type == CycleType::AddrLatch;
            if (!ca_was_addr)
                ca_cmd = c.value;
            break;
          case CycleType::DataIn:
            if (have_ca) {
                const Tick need = ca_was_addr ? t.tAdl : t.tCcs;
                if (c.start < ca_end + need) {
                    aud.report(
                        Check::AcTiming, "onfi.tADL", seg.channel, c.start,
                        strfmt("data-in burst on CE%u %.1f ns after the "
                               "%s cycle; %s requires %.1f ns",
                               ce, ticks::toNs(c.start - ca_end),
                               ca_was_addr ? "address" : "command",
                               ca_was_addr ? "tADL" : "tCCS",
                               ticks::toNs(need)));
                }
            }
            break;
          case CycleType::DataOut:
            if (have_ca) {
                const bool col_change =
                    !ca_was_addr && ca_cmd == nand::opcode::kChangeReadCol2;
                const Tick need = col_change ? t.tCcs : t.tWhr;
                if (c.start < ca_end + need) {
                    aud.report(
                        Check::AcTiming, "onfi.tWHR", seg.channel, c.start,
                        strfmt("data-out burst on CE%u %.1f ns after the "
                               "last C/A cycle; %s requires %.1f ns",
                               ce, ticks::toNs(c.start - ca_end),
                               col_change ? "tCCS" : "tWHR",
                               ticks::toNs(need)));
                }
            }
            have_do = true;
            do_end = c.dataEnd;
            break;
        }
    }

    // --- Update cross-segment state. ---
    if (!seg.cycles.empty()) {
        const CycleView &last = seg.cycles.back();
        st.haveBusyStart =
            (last.type == CycleType::CmdLatch &&
             isBusyStartCommand(last.value)) ||
            last.type == CycleType::DataIn;
        if (st.haveBusyStart)
            st.busyStartEnd = last.end;
        if (have_do) {
            st.haveDataOut = true;
            st.dataOutEnd = do_end;
        } else if (st.haveBusyStart) {
            // Array work invalidates the read-turnaround origin.
            st.haveDataOut = false;
        }
    }
}

} // namespace babol::obs::audit
