#include "auditor.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/hub.hh"
#include "obs/power/power.hh"
#include "onfi_rules.hh"
#include "sim/logging.hh"

namespace babol::obs::audit {

const char *
toString(Check c)
{
    switch (c) {
      case Check::AcTiming:
        return "ac-timing";
      case Check::LunProtocol:
        return "lun-protocol";
      case Check::Channel:
        return "channel";
      case Check::Conservation:
        return "conservation";
      case Check::Power:
        return "power";
      case Check::Recovery:
        return "recovery";
      case Check::Reliability:
        return "reliability";
    }
    return "?";
}

std::string
Diagnostic::oneLine() const
{
    return strfmt("%s[%s] %s at %.3f us — %s: %s",
                  suppressed ? "[suppressed: fault-expected] " : "",
                  audit::toString(check), rule.c_str(), ticks::toUs(at),
                  where.c_str(), message.c_str());
}

Auditor &
Auditor::instance()
{
    static Auditor auditor;
    return auditor;
}

namespace {
thread_local Auditor *tlsAuditor = nullptr;
} // namespace

Auditor &
Auditor::current()
{
    return tlsAuditor ? *tlsAuditor : instance();
}

Auditor *
Auditor::exchangeCurrent(Auditor *a)
{
    Auditor *prev = tlsAuditor;
    tlsAuditor = a;
    return prev;
}

std::unique_ptr<Auditor>
Auditor::makeShard(const Auditor &src)
{
    auto shard = std::unique_ptr<Auditor>(new Auditor(Detached{}));
    if (src.armed_) {
        shard->cfg_ = src.cfg_;
        shard->installBuiltins();
        shard->armed_ = true;
    }
    return shard;
}

void
Auditor::absorb(Auditor &shard)
{
    segments_ += shard.segments_;
    for (auto &d : shard.diags_)
        diags_.push_back(std::move(d));
    shard.diags_.clear();
    shard.segments_ = 0;
}

Auditor::Auditor()
{
    // BABOL_AUDIT=1 arms the default sanitizer mode: panic on the first
    // violation, no forced tracing (flight dumps show whatever the ring
    // holds). Mirrors the BABOL_DEBUG env convention.
    const char *env = std::getenv("BABOL_AUDIT");
    if (env && *env && std::strcmp(env, "0") != 0)
        arm();
}

void
Auditor::arm(Config cfg)
{
    cfg_ = cfg;
    rules_.clear();
    installBuiltins();
    diags_.clear();
    segments_ = 0;
    armed_ = true;
    if (cfg_.enableTrace)
        obs::trace().setEnabled(true);
}

void
Auditor::disarm()
{
    armed_ = false;
    rules_.clear();
    diags_.clear();
    segments_ = 0;
}

void
Auditor::installBuiltins()
{
    rules_.push_back(std::make_unique<AcTimingRule>());
}

void
Auditor::addRule(std::unique_ptr<Rule> rule)
{
    rules_.push_back(std::move(rule));
}

void
Auditor::tapSegment(const SegmentView &seg)
{
    if (!armed_)
        return;
    ++segments_;
    if (seg.ceMask == 0) {
        report(Check::Channel, "chan.ce-none", seg.channel, seg.start,
               strfmt("segment '%.*s' drives the bus with no chip enabled",
                      static_cast<int>(seg.label.size()),
                      seg.label.data()));
    }
    for (auto &rule : rules_)
        rule->onSegment(seg, *this);
}

void
Auditor::tapFifoWait(std::string_view unit, std::string_view label,
                     Tick now, Tick waited)
{
    if (!armed_ || waited <= cfg_.starvationBound)
        return;
    report(Check::Channel, "chan.starvation", unit, now,
           strfmt("transaction '%.*s' waited %.1f us in the exec FIFO "
                  "(starvation bound %.1f us)",
                  static_cast<int>(label.size()), label.data(),
                  ticks::toUs(waited), ticks::toUs(cfg_.starvationBound)));
}

void
Auditor::report(Check check, std::string rule, std::string_view where,
                Tick at, std::string message, bool suppressed)
{
    Diagnostic d;
    d.check = check;
    d.rule = std::move(rule);
    d.where = std::string(where);
    d.message = std::move(message);
    d.at = at;
    d.span = obs::currentCtx();
    d.flight = flightDump();
    d.suppressed = suppressed;
    diags_.push_back(d);
    if (cfg_.throwOnDiagnostic && !suppressed) {
        std::fprintf(stderr,
                     "audit: %s\n--- flight recorder ---\n%s",
                     d.oneLine().c_str(), d.flight.c_str());
        panic("audit: %s", d.oneLine().c_str());
    }
}

void
Auditor::finish()
{
    if (!armed_)
        return;

    // Energy conservation does not depend on the trace ring, so it
    // runs even when span accounting below has to bail out.
    power::PowerModel::auditAll(*this);

    TraceRecorder &tr = obs::trace();
    if (tr.totalRecorded() == 0)
        return; // nothing was traced; nothing to account
    if (tr.droppedRecords() > 0) {
        // The ring wrapped: Begin/End pairs may straddle the lost
        // window, so span accounting would only produce noise.
        return;
    }

    const Interner &in = tr.interner();

    struct BeginInfo
    {
        Tick t0 = 0;
        std::uint32_t label = 0;
        std::uint32_t track = 0;
        bool closed = false;
        bool isOp = false;
    };
    std::map<SpanId, BeginInfo> begins;
    std::set<SpanId> parentsWithSegment;

    tr.forEach([&](std::uint64_t, const TraceRecord &rec) {
        switch (rec.kind) {
          case RecKind::Begin: {
            BeginInfo info;
            info.t0 = rec.t0;
            info.label = rec.label;
            info.track = rec.track;
            const std::string &label = in.label(rec.label);
            info.isOp = label.rfind("op.", 0) == 0;
            begins[rec.span] = info;
            break;
          }
          case RecKind::End: {
            auto it = begins.find(rec.span);
            if (it == begins.end()) {
                report(Check::Conservation, "span.orphan-end", "trace",
                       rec.t0,
                       strfmt("END for span %llu with no matching BEGIN",
                              static_cast<unsigned long long>(rec.span)));
            } else {
                if (rec.t0 < it->second.t0) {
                    report(Check::Conservation, "span.negative", "trace",
                           rec.t0,
                           strfmt("span %llu ('%s') ends before it "
                                  "begins",
                                  static_cast<unsigned long long>(
                                      rec.span),
                                  in.label(it->second.label).c_str()));
                }
                it->second.closed = true;
            }
            break;
          }
          case RecKind::Complete: {
            if (rec.parent != kNoSpan) {
                parentsWithSegment.insert(rec.parent);
                auto it = begins.find(rec.parent);
                if (it != begins.end() && rec.t0 < it->second.t0) {
                    report(Check::Conservation, "span.nesting", "trace",
                           rec.t0,
                           strfmt("'%s' starts before its parent span "
                                  "%llu ('%s') opened",
                                  in.label(rec.label).c_str(),
                                  static_cast<unsigned long long>(
                                      rec.parent),
                                  in.label(it->second.label).c_str()));
                }
            }
            break;
          }
          case RecKind::Instant:
          case RecKind::Counter:
            break;
        }
    });

    for (const auto &[span, info] : begins) {
        if (!info.closed) {
            report(Check::Conservation, "span.never-closed",
                   in.label(info.track), info.t0,
                   strfmt("span %llu ('%s') opened at %.3f us never "
                          "closed",
                          static_cast<unsigned long long>(span),
                          in.label(info.label).c_str(),
                          ticks::toUs(info.t0)));
        }
        if (info.isOp && info.closed &&
            parentsWithSegment.find(span) == parentsWithSegment.end()) {
            report(Check::Conservation, "op.no-segment",
                   in.label(info.track), info.t0,
                   strfmt("op span %llu ('%s') produced no bus segment",
                          static_cast<unsigned long long>(span),
                          in.label(info.label).c_str()));
        }
    }
}

std::string
Auditor::flightDump() const
{
    const TraceRecorder &tr = obs::trace();
    const Interner &in = tr.interner();
    const std::size_t held = tr.size();
    const std::size_t n = std::min(cfg_.flightRecords, held);
    std::ostringstream os;
    if (n == 0) {
        os << "  (trace ring empty — arm with enableTrace or "
              "obs::trace().setEnabled(true) for flight dumps)\n";
        return os.str();
    }
    const std::uint64_t hidden =
        tr.droppedRecords() + static_cast<std::uint64_t>(held - n);
    if (hidden > 0) {
        os << strfmt("  ... %llu earlier record(s) not shown\n",
                     static_cast<unsigned long long>(hidden));
    }
    for (std::size_t i = held - n; i < held; ++i) {
        const TraceRecord &rec = tr.at(i);
        switch (rec.kind) {
          case RecKind::Complete:
            os << strfmt("  [%10.3f .. %10.3f us] %-12s ce=%02llx  %s\n",
                         ticks::toUs(rec.t0), ticks::toUs(rec.t1),
                         in.label(rec.track).c_str(),
                         static_cast<unsigned long long>(rec.arg),
                         in.label(rec.label).c_str());
            break;
          case RecKind::Begin:
            os << strfmt("  [%10.3f us %13s] %-12s BEGIN %s (span %llu)\n",
                         ticks::toUs(rec.t0), "",
                         in.label(rec.track).c_str(),
                         in.label(rec.label).c_str(),
                         static_cast<unsigned long long>(rec.span));
            break;
          case RecKind::End:
            // End records carry only the span id (track stays 0).
            os << strfmt("  [%10.3f us %13s] %-12s END   (span %llu)\n",
                         ticks::toUs(rec.t0), "", "-",
                         static_cast<unsigned long long>(rec.span));
            break;
          case RecKind::Instant:
            os << strfmt("  [%10.3f us %13s] %-12s !%s\n",
                         ticks::toUs(rec.t0), "",
                         in.label(rec.track).c_str(),
                         in.label(rec.label).c_str());
            break;
          case RecKind::Counter:
            os << strfmt("  [%10.3f us %13s] %-12s = %llu\n",
                         ticks::toUs(rec.t0), "",
                         in.label(rec.label).c_str(),
                         static_cast<unsigned long long>(rec.arg));
            break;
        }
    }
    return os.str();
}

std::size_t
Auditor::unsuppressedCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags_)
        if (!d.suppressed)
            ++n;
    return n;
}

void
Auditor::writeReport(std::ostream &os) const
{
    const std::size_t counted = unsuppressedCount();
    if (diags_.empty() || counted == 0) {
        os << strfmt("audit: clean — %llu segment(s) audited, "
                     "0 diagnostics",
                     static_cast<unsigned long long>(segments_));
        if (!diags_.empty()) {
            os << strfmt(" (%zu fault-expected, suppressed)",
                         diags_.size());
        }
        os << "\n";
        if (diags_.empty())
            return;
    } else {
        os << strfmt("audit: %zu diagnostic(s) over %llu segment(s)",
                     counted,
                     static_cast<unsigned long long>(segments_));
        if (diags_.size() != counted) {
            os << strfmt(" (+%zu fault-expected, suppressed)",
                         diags_.size() - counted);
        }
        os << "\n";
    }
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        os << strfmt("\n[%zu] %s\n", i + 1, d.oneLine().c_str());
        if (d.span != kNoSpan) {
            os << strfmt("    span context: %llu\n",
                         static_cast<unsigned long long>(d.span));
        }
        os << "    --- flight recorder ---\n" << d.flight;
    }
}

} // namespace babol::obs::audit
