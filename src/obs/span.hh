/**
 * @file
 * Span identity for cross-layer request tracing.
 *
 * A span is one timed stage of a request's life (host IO, FTL mapping,
 * controller op, bus segment, LUN busy period). Spans form a tree: each
 * carries the id of its parent, and the root is the host command the
 * HIC minted a context for. The ids are plain 64-bit integers so a
 * TraceContext can ride inside FlashRequest / Transaction / Segment by
 * value with zero allocation and trivial copies.
 */

#ifndef BABOL_OBS_SPAN_HH
#define BABOL_OBS_SPAN_HH

#include <cstdint>

namespace babol::obs {

/** Unique id of one span; 0 means "no span" everywhere. */
using SpanId = std::uint64_t;

constexpr SpanId kNoSpan = 0;

/**
 * The context threaded through the stack alongside a request. Today it
 * is just the enclosing span; it stays a struct so later PRs can add
 * sampling flags or a trace id without touching every carrier again.
 */
struct TraceContext
{
    SpanId span = kNoSpan;

    bool valid() const { return span != kNoSpan; }
};

} // namespace babol::obs

#endif // BABOL_OBS_SPAN_HH
