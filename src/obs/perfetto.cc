#include "perfetto.hh"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <unordered_map>

namespace babol::obs {

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
    os << '"';
}

/** Picoseconds as fractional microseconds, exactly representable text. */
void
writeUs(std::ostream &os, Tick ps)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(ps / 1000000),
                  static_cast<unsigned long long>(ps % 1000000));
    os << buf;
}

struct EventOut
{
    const char *ph;
    std::uint32_t track;
    std::uint32_t label;
    Tick t0;
    Tick dur;
    SpanId span;
    SpanId parent;
    std::uint64_t arg;
};

void
writeEvent(std::ostream &os, const Interner &in, const EventOut &ev,
           bool &first)
{
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"name\": ";
    writeEscaped(os, in.label(ev.label));
    os << ", \"cat\": \"babol\", \"ph\": \"" << ev.ph << "\", \"ts\": ";
    writeUs(os, ev.t0);
    if (ev.ph[0] == 'X') {
        os << ", \"dur\": ";
        writeUs(os, ev.dur);
    } else {
        os << ", \"s\": \"t\"";
    }
    os << ", \"pid\": 1, \"tid\": " << (ev.track + 1)
       << ", \"args\": {\"span\": " << ev.span << ", \"parent\": "
       << ev.parent << ", \"arg\": " << ev.arg << "}}";
}

} // namespace

void
writePerfettoJson(std::ostream &os, const TraceRecorder &rec)
{
    const Interner &in = rec.interner();

    // Pass 1: which tracks appear, and where does each Begin pair up.
    std::set<std::uint32_t> tracks;
    std::unordered_map<SpanId, Tick> ends;
    rec.forEach([&](std::uint64_t, const TraceRecord &r) {
        if (r.kind == RecKind::End)
            ends.emplace(r.span, r.t0);
        else if (r.kind != RecKind::Counter) // counters name themselves
            tracks.insert(r.track);
    });

    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
    bool first = true;

    // Thread metadata: one named row per track.
    for (std::uint32_t track : tracks) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << (track + 1) << ", \"args\": {\"name\": ";
        writeEscaped(os, in.label(track));
        os << "}}";
    }

    rec.forEach([&](std::uint64_t, const TraceRecord &r) {
        EventOut ev{"X",    r.track, r.label, r.t0,
                    0,      r.span,  r.parent, r.arg};
        switch (r.kind) {
          case RecKind::Complete:
            ev.dur = r.t1 >= r.t0 ? r.t1 - r.t0 : 0;
            break;
          case RecKind::Begin: {
            auto it = ends.find(r.span);
            if (it == ends.end()) {
                ev.ph = "i"; // still open: degrade to an instant
            } else {
                ev.dur = it->second >= r.t0 ? it->second - r.t0 : 0;
            }
            break;
          }
          case RecKind::End:
            return; // folded into its Begin
          case RecKind::Instant:
            ev.ph = "i";
            break;
          case RecKind::Counter: {
            // A counter track: same-named "C" samples form one rail.
            os << (first ? "\n    " : ",\n    ");
            first = false;
            os << "{\"name\": ";
            writeEscaped(os, in.label(r.label));
            os << ", \"cat\": \"babol\", \"ph\": \"C\", \"ts\": ";
            writeUs(os, r.t0);
            os << ", \"pid\": 1, \"args\": {\"mW\": " << r.arg << "}}";
            return;
          }
        }
        writeEvent(os, in, ev, first);
    });

    os << (first ? "]\n" : "\n  ]\n") << "}\n";
}

} // namespace babol::obs
