/**
 * @file
 * Binary ring-buffer trace recorder — the single recording backend for
 * every trace producer in the simulator (bus segments, controller ops,
 * FTL decisions, LUN busy periods, host IOs).
 *
 * Records are fixed-size PODs holding interned label ids, so the steady
 * state allocates nothing: the ring is sized once (when recording is
 * enabled or the capacity changes) and old records are overwritten when
 * it wraps, logic-analyzer style. Exporters (Perfetto JSON, VCD, the
 * BusTrace query API) walk the held window after the run.
 */

#ifndef BABOL_OBS_RECORDER_HH
#define BABOL_OBS_RECORDER_HH

#include <cstdint>
#include <vector>

#include "interner.hh"
#include "sim/types.hh"
#include "span.hh"

namespace babol::obs {

enum class RecKind : std::uint8_t {
    Complete, //!< closed interval [t0, t1]
    Begin,    //!< span opened at t0 (End pairs by span id)
    End,      //!< span closed at t0
    Instant,  //!< point event at t0
    Counter,  //!< counter-track sample at t0 (value in arg)
};

/** One fixed-size trace record (no owned memory). */
struct TraceRecord
{
    Tick t0 = 0;
    Tick t1 = 0;
    SpanId span = kNoSpan;
    SpanId parent = kNoSpan;
    std::uint64_t arg = 0;     //!< producer-defined (LPN, CE mask, chip...)
    std::uint32_t track = 0;   //!< interned component name
    std::uint32_t label = 0;   //!< interned event name
    RecKind kind = RecKind::Complete;
};

class TraceRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 18;

    explicit TraceRecorder(Interner &interner,
                           std::size_t capacity = kDefaultCapacity)
        : interner_(interner), capacity_(capacity)
    {}

    Interner &interner() { return interner_; }
    const Interner &interner() const { return interner_; }

    /** Global recording switch; enabling preallocates the ring. */
    bool enabled() const { return enabled_; }
    void
    setEnabled(bool on)
    {
        enabled_ = on;
        if (on)
            reserveRing();
    }

    /** Resize the ring (drops held records, keeps totals). */
    void
    setCapacity(std::size_t records)
    {
        capacity_ = records ? records : 1;
        ring_.clear();
        ring_.shrink_to_fit();
        base_ = total_;
        if (enabled_)
            reserveRing();
    }

    /** Fresh span id (never 0). Cheap; valid even while disabled. */
    SpanId nextSpanId() { return ++lastSpan_; }

    /**
     * Start minting span ids from @p base + 1 — each shard context
     * seeds its recorder with the shard index in the top bits so ids
     * are process-unique and reproducible at any thread count.
     */
    void seedSpanIds(SpanId base) { lastSpan_ = base; }

    // --- Recording (no-ops returning kNoSpan while disabled) ---

    SpanId
    complete(std::uint32_t track, std::uint32_t label, Tick t0, Tick t1,
             SpanId parent = kNoSpan, std::uint64_t arg = 0)
    {
        if (!enabled_)
            return kNoSpan;
        TraceRecord rec;
        rec.kind = RecKind::Complete;
        rec.t0 = t0;
        rec.t1 = t1;
        rec.span = nextSpanId();
        rec.parent = parent;
        rec.arg = arg;
        rec.track = track;
        rec.label = label;
        push(rec);
        return rec.span;
    }

    SpanId
    beginSpan(std::uint32_t track, std::uint32_t label, Tick t,
              SpanId parent = kNoSpan, std::uint64_t arg = 0)
    {
        if (!enabled_)
            return kNoSpan;
        TraceRecord rec;
        rec.kind = RecKind::Begin;
        rec.t0 = t;
        rec.t1 = t;
        rec.span = nextSpanId();
        rec.parent = parent;
        rec.arg = arg;
        rec.track = track;
        rec.label = label;
        push(rec);
        return rec.span;
    }

    void
    endSpan(SpanId span, Tick t)
    {
        if (!enabled_ || span == kNoSpan)
            return;
        TraceRecord rec;
        rec.kind = RecKind::End;
        rec.t0 = t;
        rec.t1 = t;
        rec.span = span;
        push(rec);
    }

    void
    instant(std::uint32_t track, std::uint32_t label, Tick t,
            SpanId parent = kNoSpan, std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        TraceRecord rec;
        rec.kind = RecKind::Instant;
        rec.t0 = t;
        rec.t1 = t;
        rec.span = nextSpanId();
        rec.parent = parent;
        rec.arg = arg;
        rec.track = track;
        rec.label = label;
        push(rec);
    }

    /**
     * One sample of a numeric timeline (a Perfetto counter track):
     * the series named by @p label holds @p value from @p t onward.
     * The power rails render through these.
     */
    void
    counter(std::uint32_t track, std::uint32_t label, Tick t,
            std::uint64_t value)
    {
        if (!enabled_)
            return;
        TraceRecord rec;
        rec.kind = RecKind::Counter;
        rec.t0 = t;
        rec.t1 = t;
        rec.arg = value;
        rec.track = track;
        rec.label = label;
        push(rec);
    }

    /**
     * Force-record regardless of the global switch — the per-bus
     * BusTrace enable uses this so existing harnesses keep working
     * without turning on whole-simulator tracing.
     */
    void
    push(const TraceRecord &rec)
    {
        if (ring_.size() < capacity_) {
            ring_.push_back(rec);
        } else {
            ring_[(total_ - base_) % capacity_] = rec;
        }
        ++total_;
    }

    // --- Query (indices are oldest-held-first) ---

    std::size_t size() const { return ring_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Records ever pushed, including overwritten ones. */
    std::uint64_t totalRecorded() const { return total_ - base_; }

    /** Records lost to ring wraparound. */
    std::uint64_t
    droppedRecords() const
    {
        return totalRecorded() - ring_.size();
    }

    /** Monotone sequence number of the oldest held record. */
    std::uint64_t seqOfOldest() const { return total_ - ring_.size(); }

    /** Sequence number the next pushed record will get (monotone across
     *  clear(), so producers can watermark "records after this point"). */
    std::uint64_t nextSeq() const { return total_; }

    const TraceRecord &
    at(std::size_t i) const
    {
        if (ring_.size() < capacity_)
            return ring_[i];
        return ring_[(total_ - base_ + i) % capacity_];
    }

    /** Visit held records oldest-first as fn(seq, record). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        const std::uint64_t first = seqOfOldest();
        for (std::size_t i = 0; i < ring_.size(); ++i)
            fn(first + i, at(i));
    }

    /** Drop held records; totals restart but sequence numbers stay
     *  monotone (label interns survive). */
    void
    clear()
    {
        ring_.clear();
        base_ = total_;
        if (enabled_)
            reserveRing();
    }

  private:
    void
    reserveRing()
    {
        if (ring_.capacity() < capacity_)
            ring_.reserve(capacity_);
    }

    Interner &interner_;
    std::vector<TraceRecord> ring_;
    std::size_t capacity_;
    std::uint64_t total_ = 0; //!< pushes since construction/clear
    std::uint64_t base_ = 0;  //!< total_ value at the last setCapacity
    SpanId lastSpan_ = kNoSpan;
    bool enabled_ = false;
};

} // namespace babol::obs

#endif // BABOL_OBS_RECORDER_HH
