/**
 * @file
 * Shared observability command-line flags.
 *
 * Every bench and example harness accepts the same three switches
 * through this helper instead of hand-rolling the argv loop:
 *
 *   --trace-out FILE    write a Perfetto (Chrome trace_event) JSON of
 *                       the trace ring at exit
 *   --metrics-out FILE  dump the central metrics registry as JSON
 *   --audit[=FILE]      arm the conformance auditor in collector mode;
 *                       the report goes to stdout (or FILE) at exit and
 *                       the process exits non-zero when any diagnostic
 *                       was recorded
 *   --power-out FILE    enable the power model and dump the per-rail
 *                       energy summary JSON at exit
 *   --power-cap MW      enable the power model and arm a per-channel
 *                       power-budget governor with the given cap
 *
 * Usage pattern:
 *
 *   obs::cli::Options obs_opts;
 *   for (int i = 1; i < argc; ++i) {
 *       if (obs_opts.parse(argc, argv, i))
 *           continue;
 *       ... harness-specific flags ...
 *   }
 *   obs_opts.applyStartup();
 *   ... run ...
 *   obs_opts.captureMetrics(eq);   // while the sim objects are alive
 *   return obs_opts.finalize();    // or fold into the harness status
 */

#ifndef BABOL_OBS_CLI_HH
#define BABOL_OBS_CLI_HH

#include <optional>
#include <string>

#include "metrics.hh"

namespace babol {
class EventQueue;
}

namespace babol::obs::cli {

struct Options
{
    std::string traceOut;
    std::string metricsOut;
    std::string auditOut; //!< empty = stdout
    bool audit = false;
    std::string powerOut;
    std::uint64_t powerCapMw = 0; //!< 0 = no governor

    /** One-line flag summary for usage messages. */
    static const char *usage();

    /**
     * Try to consume argv[i] (and a possible value argument). Returns
     * true — with @p i advanced past any value — when the flag was one
     * of ours; false to let the harness handle it.
     */
    bool parse(int argc, char **argv, int &i);

    /** Arm the auditor (collector mode, trace ring on) when --audit
     *  was given. Call once before the simulation starts. */
    void applyStartup() const;

    /**
     * Snapshot the metrics registry (with the kernel group of @p eq
     * registered) while the run's objects are still alive — harnesses
     * that build per-run simulations must call this before teardown.
     */
    void captureMetrics(const EventQueue &eq);

    /**
     * Write the requested outputs: perfetto JSON, metrics JSON, and —
     * when auditing — the end-of-run conservation pass plus the
     * diagnostics report. Returns the suggested process exit status
     * (1 when the audit collected diagnostics, else 0).
     */
    int finalize() const;

  private:
    std::optional<MetricsSnapshot> snapshot_;
};

} // namespace babol::obs::cli

#endif // BABOL_OBS_CLI_HH
