#include "hub.hh"

#include "sim/event_queue.hh"

namespace babol::obs {

Hub &
Hub::instance()
{
    static Hub hub;
    return hub;
}

MetricsGroup &
registerEventQueueMetrics(MetricsGroup &group, const EventQueue &eq)
{
    const EventQueue *q = &eq;
    group.value("pending", [q] {
        return static_cast<std::uint64_t>(q->pendingCount());
    });
    group.value("pool_capacity",
                [q] { return q->poolStats().poolCapacity; });
    group.value("pool_live", [q] { return q->poolStats().poolLive; });
    group.value("pool_high_water",
                [q] { return q->poolStats().poolHighWater; });
    group.value("inline_callbacks",
                [q] { return q->poolStats().inlineCallbacks; });
    group.value("outline_callbacks",
                [q] { return q->poolStats().outlineCallbacks; });
    group.value("wheel_inserts",
                [q] { return q->poolStats().wheelInserts; });
    group.value("heap_inserts", [q] { return q->poolStats().heapInserts; });
    group.value("ready_inserts",
                [q] { return q->poolStats().readyInserts; });
    group.value("compactions", [q] { return q->poolStats().compactions; });
    return group;
}

} // namespace babol::obs
