#include "hub.hh"

#include <algorithm>
#include <vector>

#include "sim/event_queue.hh"

namespace babol::obs {

Hub &
Hub::instance()
{
    static Hub hub;
    return hub;
}

namespace {
thread_local ExecContext *tlsCtx = nullptr;
} // namespace

ExecContext &
Hub::current()
{
    return tlsCtx ? *tlsCtx : instance().main_;
}

ExecContext *
Hub::exchangeCurrent(ExecContext *ctx)
{
    ExecContext *prev = tlsCtx;
    tlsCtx = ctx;
    return prev;
}

void
mergeShardTraces(TraceRecorder &dst, ExecContext *const *shards,
                 std::size_t count)
{
    struct Key
    {
        const TraceRecord *rec;
        std::uint64_t seq;
        std::uint32_t shard;
    };
    std::vector<Key> keys;
    std::size_t held = 0;
    for (std::size_t i = 0; i < count; ++i)
        held += shards[i]->trace.size();
    keys.reserve(held);
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecorder &tr = shards[i]->trace;
        const std::uint32_t shard = shards[i]->shard;
        for (std::size_t j = 0; j < tr.size(); ++j)
            keys.push_back(Key{&tr.at(j), tr.seqOfOldest() + j, shard});
    }
    std::sort(keys.begin(), keys.end(), [](const Key &a, const Key &b) {
        if (a.rec->t0 != b.rec->t0)
            return a.rec->t0 < b.rec->t0;
        if (a.shard != b.shard)
            return a.shard < b.shard;
        return a.seq < b.seq;
    });
    for (const Key &k : keys)
        dst.push(*k.rec);
    for (std::size_t i = 0; i < count; ++i)
        shards[i]->trace.clear();
}

MetricsGroup &
registerEventQueueMetrics(MetricsGroup &group, const EventQueue &eq)
{
    const EventQueue *q = &eq;
    group.value("pending", [q] {
        return static_cast<std::uint64_t>(q->pendingCount());
    });
    group.value("pool_capacity",
                [q] { return q->poolStats().poolCapacity; });
    group.value("pool_live", [q] { return q->poolStats().poolLive; });
    group.value("pool_high_water",
                [q] { return q->poolStats().poolHighWater; });
    group.value("inline_callbacks",
                [q] { return q->poolStats().inlineCallbacks; });
    group.value("outline_callbacks",
                [q] { return q->poolStats().outlineCallbacks; });
    group.value("wheel_inserts",
                [q] { return q->poolStats().wheelInserts; });
    group.value("heap_inserts", [q] { return q->poolStats().heapInserts; });
    group.value("ready_inserts",
                [q] { return q->poolStats().readyInserts; });
    group.value("compactions", [q] { return q->poolStats().compactions; });
    return group;
}

} // namespace babol::obs
