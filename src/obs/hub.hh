/**
 * @file
 * The observability hub: one process-wide home for the label interner,
 * the trace recorder, the metrics registry, and the ambient span
 * context.
 *
 * The simulator is single-threaded by construction (one EventQueue,
 * sequential callbacks), so a singleton with a plain "current context"
 * slot is both safe and the least invasive way to thread span identity
 * through call chains that were never built to carry it: a producer
 * that opens a span installs it as the ambient context (ScopedCtx) for
 * the synchronous work it triggers, and async continuations carry the
 * span id explicitly in their request/transaction/segment structs.
 *
 * Tests call reset() between runs so recorded state never leaks across
 * fixtures.
 */

#ifndef BABOL_OBS_HUB_HH
#define BABOL_OBS_HUB_HH

#include "interner.hh"
#include "metrics.hh"
#include "recorder.hh"
#include "span.hh"

namespace babol {
class EventQueue;
} // namespace babol

namespace babol::obs {

class Hub
{
  public:
    static Hub &instance();

    Interner &interner() { return interner_; }
    TraceRecorder &trace() { return trace_; }
    MetricsRegistry &metrics() { return metrics_; }

    /** Ambient span for synchronously-triggered work (kNoSpan if none). */
    SpanId currentCtx() const { return current_; }

    /**
     * Drop recorded trace state and the ambient context. Metric
     * registrations and interned labels survive (they belong to live
     * objects); the recording switch is turned off.
     */
    void
    reset()
    {
        trace_.setEnabled(false);
        trace_.clear();
        current_ = kNoSpan;
    }

    /** RAII: installs @p ctx as the ambient span for the current scope. */
    class ScopedCtx
    {
      public:
        explicit ScopedCtx(SpanId ctx)
            : hub_(Hub::instance()), prev_(hub_.current_)
        {
            hub_.current_ = ctx;
        }
        ~ScopedCtx() { hub_.current_ = prev_; }

        ScopedCtx(const ScopedCtx &) = delete;
        ScopedCtx &operator=(const ScopedCtx &) = delete;

      private:
        Hub &hub_;
        SpanId prev_;
    };

  private:
    Hub() : trace_(interner_) {}

    friend class ScopedCtx;

    Interner interner_;
    TraceRecorder trace_;
    MetricsRegistry metrics_;
    SpanId current_ = kNoSpan;
};

inline Hub &hub() { return Hub::instance(); }
inline Interner &interner() { return hub().interner(); }
inline TraceRecorder &trace() { return hub().trace(); }
inline MetricsRegistry &metrics() { return hub().metrics(); }
inline SpanId currentCtx() { return hub().currentCtx(); }

/**
 * Register the event kernel's pool/scheduler gauges under
 * "<prefix>.pool_live", "<prefix>.wheel_inserts", ... The obs layer
 * depends on sim (never the reverse), so the bridge lives here.
 */
MetricsGroup &registerEventQueueMetrics(MetricsGroup &group,
                                        const EventQueue &eq);

} // namespace babol::obs

#endif // BABOL_OBS_HUB_HH
