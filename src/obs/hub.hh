/**
 * @file
 * The observability hub: one process-wide home for the label interner
 * and the metrics registry, plus the *execution context* — the trace
 * recorder and ambient span slot the recording helpers route through.
 *
 * Classic runs are single-threaded (one EventQueue, sequential
 * callbacks), and everything lives in the hub's main ExecContext — the
 * behaviour of previous releases. The sharded engine gives every shard
 * (and fleet mode every member) its own ExecContext and installs it on
 * the worker thread via a thread-local while that shard runs, so trace
 * records and span ids are produced into per-shard buffers with no
 * synchronization on the hot path; the engine merges them
 * deterministically at epoch boundaries (mergeShardTraces).
 *
 * Shared pieces and their thread-safety:
 *  - Interner: global (ids must agree across shards so merged records
 *    decode uniformly); mutex-guarded — interning is a cold,
 *    construction-time path.
 *  - MetricsRegistry: the process registry is mutex-guarded for
 *    registration/snapshot; fleet members use private registries via
 *    their ExecContext. Counters themselves stay plain — each belongs
 *    to exactly one shard's components.
 *  - Span ids: each ExecContext mints ids in its own namespace
 *    (shard id in the top bits), so ids are unique across shards and
 *    identical at any thread count. Shard 0 / main keeps today's ids.
 *
 * Tests call reset() between runs so recorded state never leaks across
 * fixtures.
 */

#ifndef BABOL_OBS_HUB_HH
#define BABOL_OBS_HUB_HH

#include <memory>

#include "interner.hh"
#include "metrics.hh"
#include "recorder.hh"
#include "span.hh"

namespace babol {
class EventQueue;
} // namespace babol

namespace babol::obs {

/** Shard index is packed into the top bits of every minted SpanId. */
constexpr unsigned kSpanShardShift = 48;

/**
 * Everything the recording helpers resolve per execution stream: a
 * trace ring, a metrics registry (shared or private), and the ambient
 * span. One per shard / fleet member; the hub owns the main one.
 */
struct ExecContext
{
    /** Context recording into @p registry (shared-registry shards). */
    ExecContext(Interner &interner, MetricsRegistry *registry,
                std::uint32_t shard = 0,
                std::size_t traceCapacity = TraceRecorder::kDefaultCapacity)
        : trace(interner, traceCapacity), metrics(registry), shard(shard)
    {
        trace.seedSpanIds(SpanId(shard) << kSpanShardShift);
    }

    /** Context with a private registry (isolated fleet members). */
    ExecContext(Interner &interner, std::uint32_t shard,
                std::size_t traceCapacity = TraceRecorder::kDefaultCapacity)
        : trace(interner, traceCapacity),
          owned(std::make_unique<MetricsRegistry>()), metrics(owned.get()),
          shard(shard)
    {
        trace.seedSpanIds(SpanId(shard) << kSpanShardShift);
    }

    ExecContext(const ExecContext &) = delete;
    ExecContext &operator=(const ExecContext &) = delete;

    TraceRecorder trace;
    std::unique_ptr<MetricsRegistry> owned;
    MetricsRegistry *metrics;
    SpanId current = kNoSpan;
    std::uint32_t shard = 0;
};

class Hub
{
  public:
    static Hub &instance();

    Interner &interner() { return interner_; }

    /** The main-thread/classic context (also the merge destination). */
    ExecContext &main() { return main_; }

    /** The context installed on this thread (the main one by default). */
    static ExecContext &current();

    /** Install @p ctx on this thread; @return the previous binding
     *  (nullptr = main). Prefer ScopedExecContext. */
    static ExecContext *exchangeCurrent(ExecContext *ctx);

    /** Back-compat accessors: the main context's recorder and the
     *  process registry. Routing-sensitive code should go through the
     *  free helpers trace()/metrics() instead. */
    TraceRecorder &trace() { return main_.trace; }
    MetricsRegistry &metrics() { return metrics_; }

    /** Ambient span for synchronously-triggered work (kNoSpan if none). */
    SpanId currentCtx() const { return current().current; }

    /**
     * Drop recorded trace state and the ambient context of the current
     * execution context. Metric registrations and interned labels
     * survive (they belong to live objects); the recording switch is
     * turned off.
     */
    void
    reset()
    {
        ExecContext &ctx = current();
        ctx.trace.setEnabled(false);
        ctx.trace.clear();
        ctx.current = kNoSpan;
    }

    /** RAII: installs @p ctx as the ambient span for the current scope
     *  (within the current execution context). */
    class ScopedCtx
    {
      public:
        explicit ScopedCtx(SpanId ctx)
            : ctx_(Hub::current()), prev_(ctx_.current)
        {
            ctx_.current = ctx;
        }
        ~ScopedCtx() { ctx_.current = prev_; }

        ScopedCtx(const ScopedCtx &) = delete;
        ScopedCtx &operator=(const ScopedCtx &) = delete;

      private:
        ExecContext &ctx_;
        SpanId prev_;
    };

  private:
    Hub() : main_(interner_, &metrics_, 0) {}

    Interner interner_;
    MetricsRegistry metrics_;
    ExecContext main_;
};

/** RAII: routes this thread's obs helpers through @p ctx (nullptr =
 *  back to the hub's main context). */
class ScopedExecContext
{
  public:
    explicit ScopedExecContext(ExecContext *ctx)
        : prev_(Hub::exchangeCurrent(ctx))
    {}
    ~ScopedExecContext() { Hub::exchangeCurrent(prev_); }

    ScopedExecContext(const ScopedExecContext &) = delete;
    ScopedExecContext &operator=(const ScopedExecContext &) = delete;

  private:
    ExecContext *prev_;
};

inline Hub &hub() { return Hub::instance(); }
inline Interner &interner() { return hub().interner(); }
inline ExecContext &currentExec() { return Hub::current(); }
inline TraceRecorder &trace() { return Hub::current().trace; }
inline MetricsRegistry &metrics() { return *Hub::current().metrics; }
inline SpanId currentCtx() { return Hub::current().current; }

/**
 * Deterministically merge the held records of @p count shard contexts
 * into @p dst, ordered by (t0, shard, per-shard push order) — a total
 * order that depends only on the shard topology, never on the thread
 * count. Sources are cleared (their sequence numbers stay monotone).
 */
void mergeShardTraces(TraceRecorder &dst, ExecContext *const *shards,
                      std::size_t count);

/**
 * Register the event kernel's pool/scheduler gauges under
 * "<prefix>.pool_live", "<prefix>.wheel_inserts", ... The obs layer
 * depends on sim (never the reverse), so the bridge lives here.
 */
MetricsGroup &registerEventQueueMetrics(MetricsGroup &group,
                                        const EventQueue &eq);

} // namespace babol::obs

#endif // BABOL_OBS_HUB_HH
