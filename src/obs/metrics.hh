/**
 * @file
 * Central metrics registry: every Counter / Distribution / polled value
 * in the simulator, registered once under a hierarchical name
 * ("ssd.ch0.pkg2.lun0.reads"), queryable as snapshots and deltas, and
 * dumpable as JSON in one call — the bench harnesses report through
 * this instead of hand-rolled printing.
 *
 * The registry stores *references*: producers keep owning their stats
 * (zero overhead on their hot paths) and deregister on destruction via
 * the RAII MetricsGroup. Registrations carry a serial token so a name
 * re-registered by a newer object is not clobbered when the older
 * object's group finally dies (sequentially-created test fixtures).
 */

#ifndef BABOL_OBS_METRICS_HH
#define BABOL_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace babol::obs {

/** One read-only view of the registry at a point in time. */
struct MetricsSnapshot
{
    struct Scalar
    {
        std::string name;
        std::uint64_t value = 0;
    };
    struct Dist
    {
        std::string name;
        std::uint64_t count = 0;
        double sum = 0, mean = 0, min = 0, max = 0;
        double p50 = 0, p95 = 0, p99 = 0, p999 = 0;
    };

    /** Simulated time of the capture (0 when the capturer had no
     *  queue in scope); emitted top-level as "sim_ticks". */
    std::uint64_t simTicks = 0;

    std::vector<Scalar> scalars; //!< sorted by name
    std::vector<Dist> dists;     //!< sorted by name

    const Scalar *findScalar(std::string_view name) const;
    const Dist *findDist(std::string_view name) const;

    /** Scalar value by name, or @p fallback when absent. */
    std::uint64_t scalar(std::string_view name,
                         std::uint64_t fallback = 0) const;
};

class MetricsRegistry
{
  public:
    using ValueFn = std::function<std::uint64_t()>;

    /** Token identifying one registration (for exact deregistration). */
    struct Token
    {
        std::string name;
        std::uint64_t serial = 0;
    };

    Token addCounter(std::string name, const Counter *counter);
    Token addValue(std::string name, ValueFn fn);
    Token addDistribution(std::string name, const Distribution *dist);

    /** Remove iff @p token still owns the name (stale tokens no-op). */
    void remove(const Token &token);

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return entries_.size();
    }

    MetricsSnapshot snapshot() const;

    /**
     * later - earlier for scalars (names missing from @p earlier count
     * from 0; names missing from @p later are dropped). Distributions
     * are carried from @p later unchanged — they do not subtract.
     */
    static MetricsSnapshot delta(const MetricsSnapshot &later,
                                 const MetricsSnapshot &earlier);

    /** One-call JSON dump of a fresh snapshot. */
    void writeJson(std::ostream &os) const;

    static void writeJson(std::ostream &os, const MetricsSnapshot &snap);

  private:
    struct Entry
    {
        enum class Kind : std::uint8_t { Counter, Value, Dist } kind;
        const Counter *counter = nullptr;
        ValueFn fn;
        const Distribution *dist = nullptr;
        std::uint64_t serial = 0;
    };

    Token insert(std::string name, Entry entry);

    /**
     * Guards the registration map, NOT the referenced stats: fleet
     * members register concurrently into private registries, and shard
     * components (all built on the main thread) may be snapshotted
     * while deregistering in tests. Counters/Distributions stay
     * unsynchronized — each belongs to exactly one shard and is only
     * read at quiesced points.
     */
    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> entries_;
    std::uint64_t nextSerial_ = 1;
};

/**
 * RAII bundle of registrations sharing a name prefix. Members register
 * as "<prefix>.<leaf>" and everything deregisters when the group (i.e.
 * the owning component) is destroyed.
 */
class MetricsGroup
{
  public:
    MetricsGroup(MetricsRegistry &reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix))
    {}

    ~MetricsGroup()
    {
        for (const auto &tok : tokens_)
            reg_.remove(tok);
    }

    MetricsGroup(const MetricsGroup &) = delete;
    MetricsGroup &operator=(const MetricsGroup &) = delete;

    const std::string &prefix() const { return prefix_; }

    void
    counter(std::string_view leaf, const Counter *c)
    {
        tokens_.push_back(reg_.addCounter(join(leaf), c));
    }

    void
    value(std::string_view leaf, MetricsRegistry::ValueFn fn)
    {
        tokens_.push_back(reg_.addValue(join(leaf), std::move(fn)));
    }

    void
    distribution(std::string_view leaf, const Distribution *d)
    {
        tokens_.push_back(reg_.addDistribution(join(leaf), d));
    }

  private:
    std::string
    join(std::string_view leaf) const
    {
        std::string s;
        s.reserve(prefix_.size() + 1 + leaf.size());
        s += prefix_;
        s += '.';
        s.append(leaf.data(), leaf.size());
        return s;
    }

    MetricsRegistry &reg_;
    std::string prefix_;
    std::vector<MetricsRegistry::Token> tokens_;
};

} // namespace babol::obs

#endif // BABOL_OBS_METRICS_HH
