#include "scrub.hh"

#include <algorithm>

namespace babol::reliability {

PatrolScrubber::PatrolScrubber(EventQueue &eq, const std::string &name,
                               ftl::PageFtl &ftl, ScrubConfig cfg)
    : SimObject(eq, name), ftl_(ftl), cfg_(cfg),
      metrics_(obs::metrics(), name)
{
    obsTrack_ = obs::interner().intern(name);
    lblPatrol_ = obs::interner().intern("scrub.patrol");
    lblRefresh_ = obs::interner().intern("scrub.refresh");
    metrics_.value("patrol_reads", [this] { return patrolReads_; });
    metrics_.value("patrol_failures", [this] { return patrolFailures_; });
    metrics_.value("near_misses", [this] { return nearMisses_; });
    metrics_.value("disturb_trips", [this] { return disturbTrips_; });
    metrics_.value("refreshes", [this] { return refreshes_; });
    metrics_.value("yields", [this] { return yields_; });
    metrics_.value("forced_slots", [this] { return forcedSlots_; });
    metrics_.value("sweeps", [this] { return sweeps_; });
}

void
PatrolScrubber::start()
{
    if (running_)
        return;
    running_ = true;
    armTick();
}

void
PatrolScrubber::armTick()
{
    if (armed_ || !running_)
        return;
    armed_ = true;
    scheduleIn(cfg_.intervalUs * ticks::perUs, [this] {
        armed_ = false;
        tick();
    }, "scrub.tick");
}

/**
 * Move the cursor to the next live page (skipping dead chips and
 * unmapped pages). @return false when a full device pass found nothing
 * to patrol.
 */
bool
PatrolScrubber::advanceCursor()
{
    const std::uint32_t chips = ftl_.chipCount();
    const std::uint32_t blocks = ftl_.blocksPerChip();
    const std::uint32_t pages = ftl_.pagesPerBlock();
    const std::uint64_t total =
        static_cast<std::uint64_t>(chips) * blocks * pages;

    for (std::uint64_t step = 0; step < total; ++step) {
        if (++curPage_ >= pages) {
            curPage_ = 0;
            if (++curBlock_ >= blocks) {
                curBlock_ = 0;
                if (++curChip_ >= chips) {
                    curChip_ = 0;
                    ++sweeps_;
                }
            }
        }
        if (ftl_.chipDead(curChip_))
            continue;
        if (ftl_.pageLpnAt(curChip_, curBlock_, curPage_))
            return true;
    }
    return false;
}

void
PatrolScrubber::tick()
{
    if (!running_)
        return;

    // Yield to host traffic — but bounded, so a saturating workload
    // cannot park the patrol forever.
    if (ftl_.hostBusy() && consecYields_ < cfg_.maxYields) {
        ++consecYields_;
        ++yields_;
        armTick();
        return;
    }
    if (consecYields_ >= cfg_.maxYields)
        ++forcedSlots_;
    consecYields_ = 0;

    if (!advanceCursor()) {
        armTick(); // nothing live yet; idle until next interval
        return;
    }

    const std::uint32_t c = curChip_;
    const std::uint32_t b = curBlock_;
    const std::uint32_t p = curPage_;
    const std::uint64_t lpn = *ftl_.pageLpnAt(c, b, p);

    ++patrolReads_;
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblPatrol_, curTick(), obs::currentCtx(), lpn);

    ftl_.readPhysical(
        c, b, p, ftl_.reliabilityScratchAddr(cfg_.scratchSlot),
        [this, c, b, lpn, span](const core::OpResult &r) {
            obs::trace().endSpan(span, curTick());

            bool refresh = false;
            if (!r.ok) {
                // Uncorrectable on patrol: refresh immediately — the
                // FTL's refresh path escalates through RAIN rebuild if
                // a plain re-read cannot recover it either.
                ++patrolFailures_;
                refresh = true;
            } else {
                const std::uint32_t worst =
                    std::min(r.maxCodewordBits, cfg_.eccCorrectBits);
                if (cfg_.eccCorrectBits - worst <= cfg_.refreshMarginBits) {
                    ++nearMisses_; // ECC near miss: margin too thin
                    refresh = true;
                }
            }
            if (!refresh &&
                ftl_.blockHostReads(c, b) >= cfg_.disturbThreshold) {
                ++disturbTrips_;
                refresh = true;
            }
            if (!refresh) {
                armTick();
                return;
            }
            ++refreshes_;
            const obs::SpanId rs = obs::trace().beginSpan(
                obsTrack_, lblRefresh_, curTick(), obs::currentCtx(),
                lpn);
            // Steer the rewrite to the coldest other chip: scrub
            // traffic is what balances wear ACROSS chips (per-chip WL
            // only balances within one).
            ftl_.refreshLpn(lpn, [this, rs](bool) {
                obs::trace().endSpan(rs, curTick());
                armTick();
            }, ftl_.coldestChip(1u << c));
        });
}

} // namespace babol::reliability
