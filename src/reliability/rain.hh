/**
 * @file
 * RAIN — redundant array of independent NAND.
 *
 * ECC corrects bit errors inside one page; it is helpless when a whole
 * die goes dark. RAIN adds the next layer: user pages are grouped into
 * cross-chip stripes and each sealed stripe carries one XOR parity
 * page, placed on a chip none of the stripe's members occupy. Any
 * single lost unit — a page that decayed past the ECC limit, a failed
 * block, an entire dead die — is recomputed as the XOR of the stripe's
 * surviving units.
 *
 * Every stripe obeys one conservation law:
 *
 *     XOR(member pages) ^ xorAcc ^ parityPage ^ delta == 0
 *
 * where each DRAM term is absent (all-zero) when unused. `xorAcc` is
 * the running accumulator of the open stripe (and the only protection
 * a sealed stripe has until its parity page commits); `delta` is the
 * folded contribution of units that left the stripe. Rebuilding any
 * unit is then just "XOR everything else in the equation".
 *
 * The manager attaches to a PageFtl through its reliability hooks:
 *
 *  - onProgramCommitted → noteProgram: every committed data page joins
 *    the open stripe; the page's bytes (still in DRAM at commit time)
 *    fold into xorAcc. A stripe seals when it reaches stripeDataPages
 *    members or when a program lands on a chip the stripe already
 *    covers (one die may never hold two units of one stripe). Sealing
 *    writes the accumulator as the parity page via PageFtl::writeParity,
 *    steered away from the member chips.
 *
 *  - beforeErase → releaseBlock: erasing a block destroys the physical
 *    pages backing stripe units (stale members and parity still
 *    participate in the XOR equation), so each doomed unit is *patched
 *    out* first: its bytes are read once and folded into the stripe's
 *    delta, and the member is dropped — the stripe survives with a
 *    hole and the equation still balances. Two traps shape this
 *    design. Gating the erase on refresh *writes* can deadlock (a
 *    write may queue behind the very erase it gates), so the release
 *    waits on reads only. And rewriting or re-striping orphans
 *    amplifies — each erase triggers more writes than it frees and
 *    the churn feeds itself until the device eats its own free space —
 *    so the release moves no data and writes nothing. A doomed
 *    *parity* page folds back into DRAM the same way and the stripe
 *    stays memory-protected from then on — rewriting parity on every
 *    block turnover would re-buy each parity page once per erase
 *    cycle, a divergent feedback loop; one parity write per stripe,
 *    ever, keeps RAIN's write amplification bounded.
 *
 *  - onReadFailed → rebuildRead: last-resort repair for a read that
 *    exhausted retries — XOR-rebuilt from the stripe equation, then
 *    queued for background remap off the bad page.
 *
 *  - onChipDead → startSweep: queues every LPN stranded on the dead
 *    die for paced rebuild + remap, and a heal pass that patches every
 *    dead-die unit (stale members, parity pages) out of its stripe so
 *    single-fault protection is restored for the survivors
 *    (rebuild_done / rebuild_total / rebuild_eta_us track progress).
 *
 * The stripe map itself is volatile (DRAM-only, like real controllers'
 * RAIN metadata): a power cycle drops stripe protection for data
 * written before the cycle; pages written after remount stripe anew.
 */

#ifndef BABOL_RELIABILITY_RAIN_HH
#define BABOL_RELIABILITY_RAIN_HH

#include <unordered_map>

#include "ftl/ftl.hh"

namespace babol::reliability {

struct RainConfig
{
    /** Data pages per stripe (excluding parity). 0 = auto: one page
     *  per live chip, minus one chip kept clear for the parity. */
    std::uint32_t stripeDataPages = 0;

    /** Pace between background rebuild steps (µs of simulated time) —
     *  rebuild is a background citizen, not a latency spike. */
    std::uint64_t rebuildPaceUs = 20;

    /** First FTL reliability scratch slot; the manager uses three
     *  consecutive slots (parity staging, serialized repair reads,
     *  remap write-out). */
    std::uint32_t scratchSlot = 2;
};

class RainManager : public SimObject
{
  public:
    RainManager(EventQueue &eq, const std::string &name,
                ftl::PageFtl &ftl, RainConfig cfg = {});

    const RainConfig &config() const { return cfg_; }

    // --- Stats ---
    std::uint64_t stripesSealed() const { return stripesSealed_; }
    std::uint64_t parityWrites() const { return parityWrites_; }
    std::uint64_t rebuildsOk() const { return rebuildsOk_; }
    std::uint64_t rebuildsFailed() const { return rebuildsFailed_; }
    /** Stripes fully dissolved (emptied out, or dropped past repair). */
    std::uint64_t stripesReleased() const { return stripesReleased_; }
    /** Units patched out of a surviving stripe (erase or heal). */
    std::uint64_t holesPatched() const { return holesPatched_; }
    std::uint64_t rebuildTotal() const { return rebuildTotal_; }
    std::uint64_t rebuildDone() const { return rebuildDone_; }

    /** Rough time to finish the current rebuild sweep (µs). */
    std::uint64_t rebuildEtaUs() const
    {
        return (rebuildTotal_ - rebuildDone_) * cfg_.rebuildPaceUs;
    }

  private:
    /** One stripe unit: a physical page and the LPN it carried when it
     *  joined (the LPN may since have moved on — the physical bytes
     *  still back the XOR equation either way). */
    struct Unit
    {
        ftl::Ppa at;
        std::uint64_t lpn;
    };

    struct Stripe
    {
        std::uint64_t id = 0;
        std::vector<Unit> members;
        std::uint32_t chipMask = 0;
        bool sealed = false;
        bool hasParity = false;
        ftl::Ppa parity;
        /** Open-stripe accumulator: XOR of member pages. Kept after
         *  sealing until the parity page commits (it is the stripe's
         *  only protection until then), then freed. */
        std::vector<std::uint8_t> xorAcc;
        /** Folded contribution of units patched out of the stripe
         *  after sealing. DRAM-resident, like the stripe map. */
        std::vector<std::uint8_t> delta;
    };

    static std::uint64_t key(const ftl::Ppa &p)
    {
        return (std::uint64_t(p.chip) << 40) |
               (std::uint64_t(p.block) << 20) | p.page;
    }

    /** dst ^= src, growing dst from empty to page size on first use. */
    void foldInto(std::vector<std::uint8_t> &dst,
                  const std::vector<std::uint8_t> &src) const;

    std::uint32_t liveChips() const;
    std::uint32_t dataPagesTarget() const;
    Stripe &openStripe();
    void dropStripe(std::uint64_t id);

    /** Fold one committed page into the open stripe, sealing around
     *  chip collisions. */
    void addUnit(const ftl::Ppa &at, std::uint64_t lpn,
                 const std::vector<std::uint8_t> &data);

    /** Remove a member whose bytes are known, folding them into the
     *  stripe's DRAM term so the XOR equation keeps balancing. Drops
     *  the stripe when its last member leaves. */
    void patchOut(std::uint64_t stripe_id, const ftl::Ppa &at,
                  const std::vector<std::uint8_t> &data);

    /** The stripe's parity page is about to vanish (erase / dead die):
     *  fold its content back into DRAM and queue a rewrite. */
    void parityLost(std::uint64_t stripe_id,
                    const std::vector<std::uint8_t> &content);

    // Hook handlers.
    void noteProgram(const ftl::Ppa &at, std::uint64_t lpn,
                     std::uint64_t dram_addr, ftl::OobState state);
    void releaseBlock(std::uint32_t chip, std::uint32_t block,
                      std::function<void()> proceed);
    void rebuildRead(std::uint64_t lpn, ftl::Ppa at,
                     std::uint64_t dram_addr, ftl::PageFtl::Callback done);
    void startSweep(std::uint32_t chip);

    // Parity pipeline (serialized through one staging slot).
    void seal(Stripe &s);
    void pumpParity();

    /**
     * All stripe-equation work — release reads, host-path rebuilds,
     * background repairs — funnels through ONE serialized work queue.
     * Concurrent jobs could otherwise race: a release patching a
     * stripe while a rebuild walks a stale copy of its member list, or
     * two rebuilds interleaving reads through one scratch page. Jobs
     * call `next` when the queue may move on; a job must never hold
     * the queue across a *write* (the write may need the very erase a
     * queued release job gates).
     */
    void pumpWork();

    struct HostRebuild
    {
        std::uint64_t lpn;
        ftl::Ppa at;
        std::uint64_t dramAddr;
        ftl::PageFtl::Callback done;
    };

    // Background repair of a dead die: remap stranded LPNs, patch
    // dead units out of surviving stripes. A paced feeder moves one
    // job at a time into the work queue.
    struct RepairJob
    {
        bool heal = false;        //!< true: patch a dead unit out
        std::uint64_t lpn = 0;    //!< remap jobs: the stranded LPN
        std::uint64_t stripe = 0; //!< heal jobs: owning stripe
        ftl::Ppa at;              //!< heal jobs: the dead unit
    };
    void pumpRepair();

    // Work-queue job bodies.
    void doRelease(std::uint32_t chip, std::uint32_t block,
                   std::function<void()> proceed,
                   std::function<void()> next);
    void doHostRebuild(HostRebuild hr, std::function<void()> next);
    void doRepair(RepairJob job, std::function<void()> next);

    /**
     * Recompute the unit at @p target (member or parity page) from the
     * rest of the stripe equation. Sources are read one at a time
     * through scratch slot @p slot; @p done receives the recovered
     * bytes.
     */
    void rebuildUnit(std::uint64_t stripe_id, const ftl::Ppa &target,
                     std::uint32_t slot,
                     std::function<void(bool, std::vector<std::uint8_t>)>
                         done);

    ftl::PageFtl &ftl_;
    RainConfig cfg_;
    std::uint32_t pageBytes_;

    std::unordered_map<std::uint64_t, Stripe> stripes_;
    /** Physical unit (member or parity) → owning stripe. */
    std::unordered_map<std::uint64_t, std::uint64_t> unitAt_;
    std::uint64_t nextStripeId_ = 1;
    std::uint64_t openId_ = 0; //!< 0 = no open stripe

    std::deque<std::uint64_t> parityPending_;
    bool parityBusy_ = false;

    std::deque<std::function<void(std::function<void()>)>> work_;
    bool workBusy_ = false;

    std::deque<RepairJob> rebuildQueue_;
    bool repairBusy_ = false;

    std::uint64_t stripesSealed_ = 0;
    std::uint64_t parityWrites_ = 0;
    std::uint64_t rebuildsOk_ = 0;
    std::uint64_t rebuildsFailed_ = 0;
    std::uint64_t stripesReleased_ = 0;
    std::uint64_t holesPatched_ = 0;
    std::uint64_t rebuildTotal_ = 0;
    std::uint64_t rebuildDone_ = 0;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblSeal_ = 0;
    std::uint32_t lblRelease_ = 0;
    std::uint32_t lblRebuild_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::reliability

#endif // BABOL_RELIABILITY_RAIN_HH
