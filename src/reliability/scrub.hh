/**
 * @file
 * The background patrol scrubber.
 *
 * NAND decays while it sits: raw bit errors grow with retention time
 * and with read disturb (nand/flash_array.hh models both). Left alone,
 * a cold page drifts toward the ECC correction limit and the first
 * reader finds out the hard way. Real controllers run a patrol scrub —
 * a low-priority sweep that reads every live page, watches the
 * corrected-error margin, and refreshes (rewrites elsewhere) anything
 * close to the edge before it becomes uncorrectable.
 *
 * This scrubber attaches to a PageFtl through its reliability services:
 *
 *  - idle-aware pacing: one patrol read per interval, yielding while
 *    host I/O is in flight — but never more than maxYields times in a
 *    row, so a saturating host workload cannot starve the patrol
 *    (the anti-starvation forced slot);
 *  - refresh triggers: an uncorrectable patrol read, an ECC near miss
 *    (margin <= refreshMarginBits, from OpResult::maxCodewordBits), or
 *    a block whose FTL-level host-read count trips the read-disturb
 *    threshold;
 *  - cross-chip wear balancing: refresh destinations steer to the
 *    coldest live chip (PageFtl::coldestChip), so scrub traffic evens
 *    wear across chips instead of reinforcing the hot ones.
 */

#ifndef BABOL_RELIABILITY_SCRUB_HH
#define BABOL_RELIABILITY_SCRUB_HH

#include "core/ecc.hh"
#include "ftl/ftl.hh"

namespace babol::reliability {

struct ScrubConfig
{
    /** Pace: one patrol step (read or yield) per interval of simulated
     *  time. */
    std::uint64_t intervalUs = 100;

    /** Refresh when the ECC margin (correctable bits minus the worst
     *  codeword's raw errors) drops to this or below. */
    std::uint32_t refreshMarginBits = 2;

    /** Refresh pages of a block once its host-read count since erase
     *  exceeds this (the FTL-level read-disturb trip). */
    std::uint64_t disturbThreshold = 50000;

    /** Consecutive yields to host traffic before a patrol read is
     *  forced through anyway (starvation bound). */
    std::uint32_t maxYields = 16;

    /** ECC correction capability per codeword (margin baseline). */
    std::uint32_t eccCorrectBits = core::EccParams{}.correctBits;

    /** FTL reliability scratch slot staging the patrol reads. */
    std::uint32_t scratchSlot = 1;
};

class PatrolScrubber : public SimObject
{
  public:
    PatrolScrubber(EventQueue &eq, const std::string &name,
                   ftl::PageFtl &ftl, ScrubConfig cfg = {});

    /** Begin patrolling (idempotent). */
    void start();

    /** Stop after the in-flight step completes. */
    void stop() { running_ = false; }

    const ScrubConfig &config() const { return cfg_; }

    // --- Stats ---
    std::uint64_t patrolReads() const { return patrolReads_; }
    std::uint64_t patrolFailures() const { return patrolFailures_; }
    std::uint64_t nearMisses() const { return nearMisses_; }
    std::uint64_t disturbTrips() const { return disturbTrips_; }
    std::uint64_t refreshes() const { return refreshes_; }
    std::uint64_t yields() const { return yields_; }
    std::uint64_t forcedSlots() const { return forcedSlots_; }
    std::uint64_t sweeps() const { return sweeps_; }

  private:
    void armTick();
    void tick();
    bool advanceCursor();

    ftl::PageFtl &ftl_;
    ScrubConfig cfg_;
    bool running_ = false;
    bool armed_ = false;

    // Patrol cursor.
    std::uint32_t curChip_ = 0;
    std::uint32_t curBlock_ = 0;
    std::uint32_t curPage_ = 0;

    std::uint32_t consecYields_ = 0;

    std::uint64_t patrolReads_ = 0;
    std::uint64_t patrolFailures_ = 0;
    std::uint64_t nearMisses_ = 0;
    std::uint64_t disturbTrips_ = 0;
    std::uint64_t refreshes_ = 0;
    std::uint64_t yields_ = 0;
    std::uint64_t forcedSlots_ = 0;
    std::uint64_t sweeps_ = 0;

    std::uint32_t obsTrack_ = 0;
    std::uint32_t lblPatrol_ = 0;
    std::uint32_t lblRefresh_ = 0;

    /** Last member: deregisters before the stats it references die. */
    obs::MetricsGroup metrics_;
};

} // namespace babol::reliability

#endif // BABOL_RELIABILITY_SCRUB_HH
