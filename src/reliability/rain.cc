#include "rain.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace babol::reliability {

RainManager::RainManager(EventQueue &eq, const std::string &name,
                         ftl::PageFtl &ftl, RainConfig cfg)
    : SimObject(eq, name), ftl_(ftl), cfg_(cfg),
      pageBytes_(ftl.pageBytes()), metrics_(obs::metrics(), name)
{
    obsTrack_ = obs::interner().intern(name);
    lblSeal_ = obs::interner().intern("rain.seal");
    lblRelease_ = obs::interner().intern("rain.release");
    lblRebuild_ = obs::interner().intern("rain.rebuild");

    metrics_.value("stripes_sealed", [this] { return stripesSealed_; });
    metrics_.value("parity_writes", [this] { return parityWrites_; });
    metrics_.value("rebuilds_ok", [this] { return rebuildsOk_; });
    metrics_.value("rebuilds_failed", [this] { return rebuildsFailed_; });
    metrics_.value("stripes_released", [this] { return stripesReleased_; });
    metrics_.value("holes_patched", [this] { return holesPatched_; });
    metrics_.value("rebuild_total", [this] { return rebuildTotal_; });
    metrics_.value("rebuild_done", [this] { return rebuildDone_; });
    metrics_.value("rebuild_eta_us", [this] { return rebuildEtaUs(); });

    ftl_.onProgramCommitted = [this](const ftl::Ppa &at, std::uint64_t lpn,
                                     std::uint64_t dram_addr,
                                     ftl::OobState state) {
        noteProgram(at, lpn, dram_addr, state);
    };
    ftl_.beforeErase = [this](std::uint32_t chip, std::uint32_t block,
                              std::function<void()> proceed) {
        releaseBlock(chip, block, std::move(proceed));
    };
    ftl_.onReadFailed = [this](std::uint64_t lpn, ftl::Ppa at,
                               std::uint64_t dram_addr,
                               ftl::PageFtl::Callback done) {
        rebuildRead(lpn, at, dram_addr, std::move(done));
    };
    ftl_.onChipDead = [this](std::uint32_t chip) { startSweep(chip); };
}

void
RainManager::foldInto(std::vector<std::uint8_t> &dst,
                      const std::vector<std::uint8_t> &src) const
{
    if (src.empty())
        return;
    if (dst.empty())
        dst.assign(pageBytes_, 0);
    for (std::uint32_t i = 0; i < pageBytes_; ++i)
        dst[i] ^= src[i];
}

std::uint32_t
RainManager::liveChips() const
{
    std::uint32_t n = 0;
    for (std::uint32_t c = 0; c < ftl_.chipCount(); ++c)
        if (!ftl_.chipDead(c))
            ++n;
    return n;
}

std::uint32_t
RainManager::dataPagesTarget() const
{
    if (cfg_.stripeDataPages)
        return cfg_.stripeDataPages;
    const std::uint32_t live = liveChips();
    return live > 1 ? live - 1 : 1;
}

RainManager::Stripe &
RainManager::openStripe()
{
    if (openId_ == 0) {
        openId_ = nextStripeId_++;
        Stripe &s = stripes_[openId_];
        s.id = openId_;
        s.xorAcc.assign(pageBytes_, 0);
    }
    return stripes_[openId_];
}

void
RainManager::dropStripe(std::uint64_t id)
{
    auto it = stripes_.find(id);
    if (it == stripes_.end())
        return;
    for (const Unit &u : it->second.members)
        unitAt_.erase(key(u.at));
    if (it->second.hasParity)
        unitAt_.erase(key(it->second.parity));
    if (openId_ == id)
        openId_ = 0;
    stripes_.erase(it);
}

// --- Stripe accumulation ------------------------------------------------

void
RainManager::addUnit(const ftl::Ppa &at, std::uint64_t lpn,
                     const std::vector<std::uint8_t> &data)
{
    Stripe *s = &openStripe();
    if (at.chip < 32 && (s->chipMask >> at.chip) & 1) {
        // The open stripe already has a unit on this chip — a single
        // die loss may never take two units of one stripe, so seal it
        // short and start a new one for this page.
        seal(*s);
        s = &openStripe();
    }

    foldInto(s->xorAcc, data);
    s->members.push_back({at, lpn});
    if (at.chip < 32)
        s->chipMask |= 1u << at.chip;
    unitAt_[key(at)] = s->id;

    if (s->members.size() >= dataPagesTarget())
        seal(*s);
}

void
RainManager::patchOut(std::uint64_t stripe_id, const ftl::Ppa &at,
                      const std::vector<std::uint8_t> &data)
{
    auto it = stripes_.find(stripe_id);
    if (it == stripes_.end())
        return;
    Stripe &s = it->second;
    auto mit = std::find_if(s.members.begin(), s.members.end(),
                            [&](const Unit &u) {
                                return key(u.at) == key(at);
                            });
    if (mit == s.members.end())
        return;

    // Open stripes fold the removal straight into the accumulator;
    // sealed ones must not touch xorAcc (a parity snapshot of it may
    // be in flight), so the removal lands in delta instead. Either
    // way the stripe equation keeps summing to zero.
    if (!s.sealed)
        foldInto(s.xorAcc, data);
    else
        foldInto(s.delta, data);

    s.members.erase(mit);
    unitAt_.erase(key(at));
    s.chipMask = 0;
    for (const Unit &u : s.members)
        if (u.at.chip < 32)
            s.chipMask |= 1u << u.at.chip;
    ++holesPatched_;

    if (s.members.empty()) {
        dropStripe(stripe_id); // parity page (if any) becomes garbage
        ++stripesReleased_;
    }
}

void
RainManager::parityLost(std::uint64_t stripe_id,
                        const std::vector<std::uint8_t> &content)
{
    auto it = stripes_.find(stripe_id);
    if (it == stripes_.end() || !it->second.hasParity)
        return;
    Stripe &s = it->second;
    unitAt_.erase(key(s.parity));
    s.hasParity = false;
    // parity = XOR(members) ^ delta, so folding its content into the
    // (empty) accumulator keeps the equation balanced with the NAND
    // page gone. The stripe stays memory-protected for the rest of
    // its life — deliberately NOT rewritten to NAND: parity pages
    // live in ordinary churning blocks, so a rewrite-on-erase policy
    // re-buys every parity page each time its block turns over, and
    // that feedback loop alone can out-write the host by orders of
    // magnitude and wear out the device. One parity write per stripe,
    // ever, keeps RAIN's amplification bounded.
    foldInto(s.xorAcc, content);
    if (s.members.empty()) {
        dropStripe(stripe_id);
        ++stripesReleased_;
    }
}

void
RainManager::noteProgram(const ftl::Ppa &at, std::uint64_t lpn,
                         std::uint64_t dram_addr, ftl::OobState state)
{
    if (state == ftl::OobState::RainParity)
        return; // our own parity pages never join a stripe

    std::vector<std::uint8_t> page(pageBytes_);
    ftl_.backend().backendDram().read(dram_addr, page);
    addUnit(at, lpn, page);
}

void
RainManager::seal(Stripe &s)
{
    if (s.sealed)
        return;
    s.sealed = true;
    if (openId_ == s.id)
        openId_ = 0;
    ++stripesSealed_;
    parityPending_.push_back(s.id);
    pumpParity();
}

void
RainManager::pumpParity()
{
    if (parityBusy_)
        return;
    while (!parityPending_.empty()) {
        const std::uint64_t id = parityPending_.front();
        auto it = stripes_.find(id);
        if (it == stripes_.end() || it->second.hasParity) {
            parityPending_.pop_front(); // released or already done
            continue;
        }
        parityBusy_ = true;
        Stripe &s = it->second;

        // Snapshot the parity-to-be: fold any patch delta into the
        // accumulator so the staged copy equals XOR(current members).
        // Patches landing while the write is in flight accumulate in
        // a fresh delta against the snapshot.
        foldInto(s.xorAcc, s.delta);
        s.delta.clear();
        s.delta.shrink_to_fit();

        const std::uint64_t addr =
            ftl_.reliabilityScratchAddr(cfg_.scratchSlot);
        ftl_.backend().backendDram().write(addr, s.xorAcc);

        const obs::SpanId span = obs::trace().beginSpan(
            obsTrack_, lblSeal_, curTick(), obs::currentCtx(), id);
        ftl_.writeParity(id, addr, s.chipMask,
                         [this, id, span](bool ok, ftl::Ppa at) {
            obs::trace().endSpan(span, curTick());
            parityBusy_ = false;
            parityPending_.pop_front();
            auto sit = stripes_.find(id);
            if (sit != stripes_.end()) {
                if (ok) {
                    Stripe &st = sit->second;
                    st.hasParity = true;
                    st.parity = at;
                    unitAt_[key(at)] = id;
                    st.xorAcc.clear(); // parity landed; free the copy
                    st.xorAcc.shrink_to_fit();
                    ++parityWrites_;
                } else {
                    // Keep xorAcc: the stripe stays protected by the
                    // in-memory accumulator only.
                    warn("%s: parity write for stripe %llu failed; "
                         "stripe protected in memory only",
                         name().c_str(),
                         static_cast<unsigned long long>(id));
                }
            }
            pumpParity();
        });
        return;
    }
}

// --- Serialized work queue ----------------------------------------------

void
RainManager::pumpWork()
{
    if (workBusy_ || work_.empty())
        return;
    workBusy_ = true;
    auto job = std::move(work_.front());
    work_.pop_front();
    job([this] {
        workBusy_ = false;
        pumpWork();
    });
}

// --- Release (erase gating) ---------------------------------------------

void
RainManager::releaseBlock(std::uint32_t chip, std::uint32_t block,
                          std::function<void()> proceed)
{
    work_.push_back([this, chip, block, proceed = std::move(proceed)](
                        std::function<void()> next) {
        doRelease(chip, block, proceed, std::move(next));
    });
    pumpWork();
}

void
RainManager::doRelease(std::uint32_t chip, std::uint32_t block,
                       std::function<void()> proceed,
                       std::function<void()> next)
{
    // Units (members or parity pages) about to be destroyed. Chip-
    // collision sealing guarantees at most one unit per stripe here.
    struct Doomed
    {
        std::uint64_t stripe;
        ftl::Ppa at;
    };
    struct State
    {
        std::vector<Doomed> doomed;
        std::size_t i = 0;
        std::uint32_t chip, block;
        obs::SpanId span;
        std::function<void()> proceed, next;
    };
    auto st = std::make_shared<State>();
    st->chip = chip;
    st->block = block;
    st->proceed = std::move(proceed);
    st->next = std::move(next);
    for (std::uint32_t p = 0; p < ftl_.pagesPerBlock(); ++p) {
        auto it = unitAt_.find(key({chip, block, p}));
        if (it != unitAt_.end())
            st->doomed.push_back({it->second, {chip, block, p}});
    }
    st->span = obs::trace().beginSpan(obsTrack_, lblRelease_, curTick(),
                                      obs::currentCtx(),
                                      st->doomed.size());

    // Each doomed unit is read once (rebuilt if unreadable) and
    // patched out of its stripe — reads only, no data moves, so the
    // erase can never deadlock behind a write and frees every page it
    // promises. A doomed parity page folds back to DRAM and the
    // stripe queues a parity rewrite.
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, st, step] {
        if (st->i >= st->doomed.size()) {
            obs::trace().endSpan(st->span, curTick());
            st->proceed();
            st->next();
            return;
        }
        const Doomed d = st->doomed[st->i];
        auto sit = stripes_.find(d.stripe);
        auto uit = unitAt_.find(key(d.at));
        if (sit == stripes_.end() || uit == unitAt_.end() ||
            uit->second != d.stripe) {
            ++st->i; // stripe dissolved while we worked the block
            (*step)();
            return;
        }
        const bool isParity = sit->second.hasParity &&
                              key(sit->second.parity) == key(d.at);

        auto apply = [this, st, step, d,
                      isParity](const std::vector<std::uint8_t> &bytes) {
            if (isParity)
                parityLost(d.stripe, bytes);
            else
                patchOut(d.stripe, d.at, bytes);
            ++st->i;
            (*step)();
        };
        auto giveUp = [this, st, step, d] {
            // Unreadable and unrebuildable (double fault): the
            // stripe's equation can no longer balance — drop it and
            // let the survivors run uncovered rather than risk a
            // wrong rebuild later.
            warn("%s: stripe %llu lost unit at chip %u block %u page "
                 "%u past repair; dropping stripe (members lose cover)",
                 name().c_str(),
                 static_cast<unsigned long long>(d.stripe), d.at.chip,
                 d.at.block, d.at.page);
            ++rebuildsFailed_;
            dropStripe(d.stripe);
            ++stripesReleased_;
            ++st->i;
            (*step)();
        };

        const std::uint64_t addr =
            ftl_.reliabilityScratchAddr(cfg_.scratchSlot + 1);
        ftl_.readPhysical(d.at.chip, d.at.block, d.at.page, addr,
                          [this, d, addr, apply,
                           giveUp](const core::OpResult &r) {
            if (r.ok) {
                std::vector<std::uint8_t> bytes(pageBytes_);
                ftl_.backend().backendDram().read(addr, bytes);
                apply(bytes);
                return;
            }
            // Too decayed to read straight — the stripe is still
            // whole, so recompute this unit from the rest of it.
            rebuildUnit(d.stripe, d.at, cfg_.scratchSlot + 1,
                        [apply, giveUp](bool ok,
                                        std::vector<std::uint8_t> b) {
                if (ok)
                    apply(b);
                else
                    giveUp();
            });
        });
    };
    (*step)();
}

// --- Rebuild ------------------------------------------------------------

void
RainManager::rebuildUnit(
    std::uint64_t stripe_id, const ftl::Ppa &target, std::uint32_t slot,
    std::function<void(bool, std::vector<std::uint8_t>)> done)
{
    auto it = stripes_.find(stripe_id);
    if (it == stripes_.end()) {
        done(false, {});
        return;
    }
    const Stripe &s = it->second;
    if (!s.hasParity && s.xorAcc.empty()) {
        done(false, {}); // no equation left to solve
        return;
    }

    struct State
    {
        std::vector<ftl::Ppa> sources;
        std::vector<std::uint8_t> acc;
        std::size_t i = 0;
    };
    auto st = std::make_shared<State>();

    // target = XOR(everything else in the stripe equation).
    st->acc.assign(pageBytes_, 0);
    foldInto(st->acc, s.xorAcc);
    foldInto(st->acc, s.delta);
    const bool targetIsParity =
        s.hasParity && key(s.parity) == key(target);
    if (s.hasParity && !targetIsParity)
        st->sources.push_back(s.parity);
    for (const Unit &u : s.members)
        if (key(u.at) != key(target))
            st->sources.push_back(u.at);

    for (const ftl::Ppa &src : st->sources) {
        if (ftl_.chipDead(src.chip)) {
            // Two units of the stripe are unreadable: past the
            // single-fault protection RAIN provides.
            done(false, {});
            return;
        }
    }

    const std::uint64_t addr = ftl_.reliabilityScratchAddr(slot);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, st, step, addr, done = std::move(done)] {
        if (st->i >= st->sources.size()) {
            done(true, std::move(st->acc));
            return;
        }
        const ftl::Ppa src = st->sources[st->i++];
        ftl_.readPhysical(src.chip, src.block, src.page, addr,
                          [this, st, step, addr,
                           done](const core::OpResult &r) {
            if (!r.ok) {
                done(false, {}); // double fault: a source is unreadable
                return;
            }
            std::vector<std::uint8_t> d(pageBytes_);
            ftl_.backend().backendDram().read(addr, d);
            for (std::uint32_t i = 0; i < pageBytes_; ++i)
                st->acc[i] ^= d[i];
            (*step)();
        });
    };
    (*step)();
}

void
RainManager::rebuildRead(std::uint64_t lpn, ftl::Ppa at,
                         std::uint64_t dram_addr,
                         ftl::PageFtl::Callback done)
{
    // Front of the queue: a host read is stalled on this rebuild.
    HostRebuild hr{lpn, at, dram_addr, std::move(done)};
    work_.push_front(
        [this, hr = std::move(hr)](std::function<void()> next) mutable {
            doHostRebuild(std::move(hr), std::move(next));
        });
    pumpWork();
}

void
RainManager::doHostRebuild(HostRebuild hr, std::function<void()> next)
{
    auto uit = unitAt_.find(key(hr.at));
    if (uit == unitAt_.end()) {
        ++rebuildsFailed_; // not striped (pre-RAIN data or dropped map)
        hr.done(false);
        next();
        return;
    }
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblRebuild_, curTick(), obs::currentCtx(), hr.lpn);
    rebuildUnit(uit->second, hr.at, cfg_.scratchSlot + 1,
                [this, hr = std::move(hr), span,
                 next = std::move(next)](bool ok,
                                         std::vector<std::uint8_t> d) {
        obs::trace().endSpan(span, curTick());
        if (!ok) {
            ++rebuildsFailed_;
            hr.done(false);
            next();
            return;
        }
        ftl_.backend().backendDram().write(hr.dramAddr, d);
        ++rebuildsOk_;
        hr.done(true);
        next();
        // Remap the page off the bad copy soon (front of the queue:
        // it just cost a host read a full rebuild).
        rebuildQueue_.push_front({false, hr.lpn, 0, {}});
        ++rebuildTotal_;
        pumpRepair();
    });
}

void
RainManager::startSweep(std::uint32_t chip)
{
    std::uint64_t stranded = 0, heals = 0;
    for (std::uint64_t lpn = 0; lpn < ftl_.logicalPages(); ++lpn) {
        auto mp = ftl_.mappedPpa(lpn);
        if (mp && mp->chip == chip) {
            rebuildQueue_.push_back({false, lpn, 0, {}});
            ++rebuildTotal_;
            ++stranded;
        }
    }
    // Heal pass: every unit the dead die still contributes to a stripe
    // (stale members, parity pages) is rebuilt from the survivors and
    // patched out, restoring single-fault cover for the rest of the
    // stripe. Without this, one dead stale page poisons every future
    // rebuild its stripe is asked for.
    for (const auto &[id, s] : stripes_) {
        for (const Unit &u : s.members) {
            if (u.at.chip == chip) {
                rebuildQueue_.push_back({true, 0, id, u.at});
                ++rebuildTotal_;
                ++heals;
            }
        }
        if (s.hasParity && s.parity.chip == chip) {
            rebuildQueue_.push_back({true, 0, id, s.parity});
            ++rebuildTotal_;
            ++heals;
        }
    }
    warn("%s: chip %u dead; %llu stranded pages queued for rebuild, "
         "%llu stripe units queued for heal",
         name().c_str(), chip,
         static_cast<unsigned long long>(stranded),
         static_cast<unsigned long long>(heals));
    pumpRepair();
}

void
RainManager::pumpRepair()
{
    if (repairBusy_ || rebuildQueue_.empty())
        return;
    repairBusy_ = true;
    // Paced: repair is background traffic, one unit per interval.
    scheduleIn(cfg_.rebuildPaceUs * ticks::perUs, [this] {
        if (rebuildQueue_.empty()) {
            repairBusy_ = false;
            return;
        }
        RepairJob job = std::move(rebuildQueue_.front());
        rebuildQueue_.pop_front();
        ++rebuildDone_;
        work_.push_back([this, job](std::function<void()> next) {
            doRepair(job, std::move(next));
        });
        pumpWork();
    }, "rain.repair");
}

void
RainManager::doRepair(RepairJob job, std::function<void()> next)
{
    // `idle` frees the repair feeder; `next` frees the shared work
    // queue. Remap jobs release `next` as soon as their rewrite is
    // issued (holding the queue across a write could deadlock behind
    // a gated erase) and `idle` only when the write lands, so at most
    // one remap write is ever in flight.
    auto idle = [this] {
        repairBusy_ = false;
        pumpRepair();
    };

    if (job.heal) {
        auto sit = stripes_.find(job.stripe);
        auto uit = unitAt_.find(key(job.at));
        if (sit == stripes_.end() || uit == unitAt_.end() ||
            uit->second != job.stripe) {
            idle(); // already patched (e.g. by a remap) or dissolved
            next();
            return;
        }
        const bool isParity = sit->second.hasParity &&
                              key(sit->second.parity) == key(job.at);
        const obs::SpanId span = obs::trace().beginSpan(
            obsTrack_, lblRebuild_, curTick(), obs::currentCtx(),
            job.stripe);
        rebuildUnit(job.stripe, job.at, cfg_.scratchSlot + 1,
                    [this, job, isParity, span, idle,
                     next = std::move(next)](
                        bool ok, std::vector<std::uint8_t> d) {
            obs::trace().endSpan(span, curTick());
            if (ok) {
                ++rebuildsOk_;
                if (isParity)
                    parityLost(job.stripe, d);
                else
                    patchOut(job.stripe, job.at, d);
            } else {
                ++rebuildsFailed_;
                warn("%s: cannot patch dead unit out of stripe %llu "
                     "(double fault); members keep degraded cover",
                     name().c_str(),
                     static_cast<unsigned long long>(job.stripe));
            }
            idle();
            next();
        });
        return;
    }

    auto mp = ftl_.mappedPpa(job.lpn);
    if (!mp || !ftl_.chipDead(mp->chip)) {
        idle(); // moved to a healthy chip already (or unmapped)
        next();
        return;
    }
    const ftl::Ppa at = *mp;
    auto uit = unitAt_.find(key(at));
    if (uit == unitAt_.end()) {
        ++rebuildsFailed_;
        warn("%s: LPN %llu stranded on dead chip %u with no stripe; "
             "unrecoverable", name().c_str(),
             static_cast<unsigned long long>(job.lpn), at.chip);
        idle();
        next();
        return;
    }
    const std::uint64_t stripe = uit->second;
    const obs::SpanId span = obs::trace().beginSpan(
        obsTrack_, lblRebuild_, curTick(), obs::currentCtx(), job.lpn);
    rebuildUnit(stripe, at, cfg_.scratchSlot + 1,
                [this, job, at, stripe, span, idle,
                 next = std::move(next)](bool ok,
                                         std::vector<std::uint8_t> d) {
        obs::trace().endSpan(span, curTick());
        if (!ok) {
            ++rebuildsFailed_;
            idle();
            next();
            return;
        }
        ++rebuildsOk_;
        const std::uint64_t addr =
            ftl_.reliabilityScratchAddr(cfg_.scratchSlot + 2);
        ftl_.backend().backendDram().write(addr, d);
        ftl_.rewritePage(job.lpn, at, addr,
                         [this, at, stripe, d, idle](bool ok2) {
            if (ok2)
                patchOut(stripe, at, d); // the dead copy leaves its stripe
            idle();
        });
        next(); // free the queue; the write completes in background
    });
}

} // namespace babol::reliability
