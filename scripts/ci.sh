#!/usr/bin/env bash
# Tier-1 gate: build and run the test suite, plain and sanitized.
#
# The sanitized pass (ASan + UBSan via -DBABOL_SANITIZE=ON) exists
# chiefly for the event kernel's pool / free-list / intrusive-list code,
# where a stale index or double release would otherwise corrupt silently.
#
# Usage: scripts/ci.sh [--plain-only|--asan-only]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S "$ROOT" "$@"
    cmake --build "$dir" -j"$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

if [[ "$MODE" != "--asan-only" ]]; then
    echo "=== tier-1: plain ==="
    run_suite "$ROOT/build"
fi

# ONFI conformance audit: the whole suite and the figure benches run
# with the online auditor armed as a sanitizer (BABOL_AUDIT=1 panics on
# the first diagnostic), plus one collector-mode (--audit) pass whose
# exit status covers the end-of-run conservation checks.
if [[ "$MODE" != "--asan-only" ]]; then
    echo "=== tier-1: ONFI conformance audit (BABOL_AUDIT=1) ==="
    BABOL_AUDIT=1 ctest --test-dir "$ROOT/build" --output-on-failure \
        -j"$JOBS"
    BABOL_AUDIT=1 "$ROOT/build/bench/fig10_sw_overhead" --quick >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig11_polling_breakdown" >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig12_end_to_end" --quick >/dev/null
    "$ROOT/build/examples/ssd_fio" coro --audit | tail -3
fi

if [[ "$MODE" != "--plain-only" ]]; then
    echo "=== tier-1: ASan + UBSan ==="
    run_suite "$ROOT/build-asan" -DBABOL_SANITIZE=ON
fi

# Tracing-overhead guard: with the obs hot path compiled in but
# recording disabled, the event kernel must stay within 3% of its
# plain throughput. One retry absorbs machine noise.
if [[ "$MODE" != "--asan-only" ]]; then
    echo "=== tier-1: tracing-overhead guard ==="
    check_overhead() {
        "$ROOT/build/bench/micro_event_kernel" --quick \
            --out "$ROOT/build/bench_obs_guard.json" >/dev/null
        local pct
        pct="$(sed -n \
            's/.*"obs_disabled_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
            "$ROOT/build/bench_obs_guard.json")"
        echo "    obs-disabled overhead: ${pct}%"
        awk -v p="$pct" 'BEGIN { exit !(p <= 3.0) }'
    }
    if ! check_overhead; then
        echo "    above 3%; retrying once to rule out noise"
        check_overhead || {
            echo "FAIL: disabled tracing costs more than 3% throughput"
            exit 1
        }
    fi
fi

echo "=== tier-1: OK ==="
