#!/usr/bin/env bash
# Tier-1 gate: build and run the test suite, plain and sanitized, with
# the ONFI conformance audit and the performance guards.
#
# The sanitized pass (ASan + UBSan via -DBABOL_SANITIZE=ON) exists
# chiefly for the event kernel's pool / free-list / intrusive-list code,
# where a stale index or double release would otherwise corrupt silently.
#
# The TSan pass (-DBABOL_TSAN=ON) covers the sharded multi-core engine:
# the tier-1 suite plus the seeded fig12 workload on 4 worker threads,
# so every cross-shard ring, barrier, and merged-trace path runs under
# the race detector.
#
# Stages (all run when no flag is given; CI runs them as separate jobs):
#   --plain-only   configure/build/ctest, default flags
#   --asan-only    configure/build/ctest with ASan + UBSan
#   --tsan-only    configure/build/ctest with TSan + the sharded fig12
#                  workload on 4 threads
#   --audit-only   BABOL_AUDIT=1 sanitizer sweep + fault campaigns and
#                  power-capped runs on every controller flavour, plus
#                  the sharded engine at 1/2/4 threads and the
#                  wear-bounded lifetime smoke (requires a prior
#                  plain build; runs one if build/ is missing)
#   --crash-only   crash/remount campaign: the committed power-cut plan
#                  (examples/crash_plan.txt) on every controller
#                  flavour under BABOL_AUDIT=1, a byte-identical-rerun
#                  determinism check, and a clean-shutdown remount
#                  (same build requirement)
#   --guard-only   bench-regression + tracing-overhead guards and the
#                  determinism smokes: fig12 --threads 1/2/4 must print
#                  byte-identical tables, and the multi-tenant SLO JSON
#                  must be byte-identical across thread counts (same
#                  build requirement)
#   --reliability-only  media-decay campaign: a die killed mid-workload
#                  on every controller flavour under BABOL_AUDIT=1 with
#                  RAIN + patrol scrub on, asserting zero acknowledged
#                  data loss, byte-identical rerun and thread-count
#                  digests, a surviving block failure, and the no-RAIN
#                  control that MUST lose data (same build requirement)
#
# Usage: scripts/ci.sh
#   [--plain-only|--asan-only|--tsan-only|--audit-only|--crash-only|
#    --guard-only|--reliability-only]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S "$ROOT" "$@"
    cmake --build "$dir" -j"$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

ensure_plain_build() {
    if [[ ! -x "$ROOT/build/examples/ssd_fio" ]]; then
        cmake -B "$ROOT/build" -S "$ROOT"
        cmake --build "$ROOT/build" -j"$JOBS"
    fi
}

stage_plain() {
    echo "=== tier-1: plain ==="
    run_suite "$ROOT/build"
}

stage_asan() {
    echo "=== tier-1: ASan + UBSan ==="
    run_suite "$ROOT/build-asan" -DBABOL_SANITIZE=ON
}

stage_tsan() {
    echo "=== tier-1: TSan ==="
    run_suite "$ROOT/build-tsan" -DBABOL_TSAN=ON
    echo "=== tier-1: TSan sharded fig12 (4 threads) ==="
    "$ROOT/build-tsan/bench/fig12_end_to_end" --quick --threads 4 \
        >/dev/null
}

# ONFI conformance audit: the whole suite and the figure benches run
# with the online auditor armed as a sanitizer (BABOL_AUDIT=1 panics on
# the first unsuppressed diagnostic), plus collector-mode (--audit)
# passes whose exit status covers the end-of-run conservation checks —
# including a full fault campaign on every controller flavour, which
# must inject, recover, and still audit clean.
stage_audit() {
    ensure_plain_build
    echo "=== tier-1: ONFI conformance audit (BABOL_AUDIT=1) ==="
    BABOL_AUDIT=1 ctest --test-dir "$ROOT/build" --output-on-failure \
        -j"$JOBS"
    BABOL_AUDIT=1 "$ROOT/build/bench/fig10_sw_overhead" --quick >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig11_polling_breakdown" >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig12_end_to_end" --quick >/dev/null
    "$ROOT/build/examples/ssd_fio" coro --audit | tail -3

    # The sharded engine must audit clean at every thread count: the
    # auditor runs per-shard and its ledgers are absorbed at barriers,
    # so a miscounted absorb would show up here as a panic.
    echo "=== tier-1: sharded-engine audit (1/2/4 threads) ==="
    local t
    for t in 1 2 4; do
        BABOL_AUDIT=1 "$ROOT/build/bench/fig12_end_to_end" --quick \
            --threads "$t" >/dev/null
    done

    # The NVMe front end replayed on the sharded engine must audit
    # clean too: queue fetches/CQE posts ride the host shard while
    # flash work crosses shard links.
    echo "=== tier-1: sharded trace replay audit (4 threads) ==="
    BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" coro --qpairs 2 \
        --replay "$ROOT/examples/trace_sample.txt" --threads 4 \
        | tail -3

    # Power-accounting smoke: run every flavour with the sanitizer armed
    # and a power cap low enough to open throttle windows. The auditor's
    # Power rule checks energy conservation at finish, and the
    # throttle-admission tripwire panics if a request slips past the
    # governor's gate during a forced idle window.
    echo "=== tier-1: power-audit smoke (cap + conservation) ==="
    mkdir -p "$ROOT/build/audit-reports"
    local pf
    for pf in coro rtos hw; do
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" "$pf" \
            --power-cap 100 --audit="$ROOT/build/audit-reports/power_${pf}.txt" \
            | tail -2
    done

    echo "=== tier-1: fault campaigns (every flavour, audit-clean) ==="
    mkdir -p "$ROOT/build/audit-reports"
    local flavor
    for flavor in coro rtos hw; do
        echo "--- $flavor ---"
        "$ROOT/build/examples/ssd_fio" "$flavor" \
            --faults "$ROOT/examples/fault_plan.txt" \
            --audit="$ROOT/build/audit-reports/fault_${flavor}.txt" \
            | tail -4
    done

    # Wear-bounded lifetime smoke: drive one chip to its erase limit.
    # The FTL must retire the worn block without stranding a single
    # in-flight write, static WL must hold the erase-count spread, and
    # the device must keep serving writes afterwards.
    echo "=== tier-1: wear-bounded lifetime smoke ==="
    "$ROOT/build/examples/ssd_fio" coro --lifetime-smoke | tail -2
}

# Crash/remount campaign: every power-cut point in the committed plan
# is one full cut/remount/verify cycle, run on every controller flavour
# with the auditor armed as a sanitizer. The gate: zero lost
# acknowledged writes, zero resurrected stale mappings, audit-clean —
# and recovery must be deterministic, so a rerun's digest file has to
# be byte-identical. A clean shutdown must remount to exactly the
# issued state.
stage_crash() {
    ensure_plain_build
    echo "=== tier-1: crash/remount campaign (every flavour) ==="
    mkdir -p "$ROOT/build/crash-reports"
    local flavor
    for flavor in coro rtos hw; do
        echo "--- $flavor ---"
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" "$flavor" \
            --crash-plan "$ROOT/examples/crash_plan.txt" \
            --crash-out "$ROOT/build/crash-reports/crash_${flavor}_a.txt" \
            | tail -3
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" "$flavor" \
            --crash-plan "$ROOT/examples/crash_plan.txt" \
            --crash-out "$ROOT/build/crash-reports/crash_${flavor}_b.txt" \
            >/dev/null
        cmp "$ROOT/build/crash-reports/crash_${flavor}_a.txt" \
            "$ROOT/build/crash-reports/crash_${flavor}_b.txt" || {
            echo "FAIL: $flavor crash recovery is not deterministic"
            exit 1
        }
    done
    echo "    byte-identical recovery digests on reruns"

    echo "=== tier-1: clean-shutdown remount ==="
    BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" coro --remount | tail -2
}

# Media-decay reliability campaign: on every controller flavour, kill a
# die mid-workload with RAIN + patrol scrub armed and the auditor in
# sanitizer mode. The gate: the run completes with zero acknowledged
# data loss (exit 0, not the data-loss exit code 4), every stranded
# page XOR-rebuilt and verified by read-back digest — and the whole
# campaign is deterministic, so a rerun's digest file must be
# byte-identical, as must the digest across 1/2/4 worker threads. A
# block failure must be survived the same way, and the no-RAIN control
# MUST lose data (proving the campaign actually bites).
stage_reliability() {
    ensure_plain_build
    echo "=== tier-1: reliability test suite (ctest -L reliability) ==="
    BABOL_AUDIT=1 ctest --test-dir "$ROOT/build" --output-on-failure \
        -L reliability -j"$JOBS"

    echo "=== tier-1: reliability campaign (die failure, every flavour) ==="
    mkdir -p "$ROOT/build/reliability-reports"
    # The digest file is append-mode; stale lines from a previous local
    # run would defeat the byte-identical cmp below.
    rm -f "$ROOT/build/reliability-reports"/rel_*.txt
    local flavor
    for flavor in coro rtos hw; do
        echo "--- $flavor ---"
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" "$flavor" \
            --rain --scrub --diefail-at 200 \
            --reliability-out "$ROOT/build/reliability-reports/rel_${flavor}_a.txt" \
            | tail -4
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" "$flavor" \
            --rain --scrub --diefail-at 200 \
            --reliability-out "$ROOT/build/reliability-reports/rel_${flavor}_b.txt" \
            >/dev/null
        cmp "$ROOT/build/reliability-reports/rel_${flavor}_a.txt" \
            "$ROOT/build/reliability-reports/rel_${flavor}_b.txt" || {
            echo "FAIL: $flavor die-failure recovery is not deterministic"
            exit 1
        }
    done
    echo "    byte-identical recovery digests on reruns"

    echo "=== tier-1: reliability thread-count determinism (1/2/4) ==="
    local t
    for t in 1 2 4; do
        BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" coro \
            --rain --scrub --diefail-at 200 --threads "$t" \
            --reliability-out "$ROOT/build/reliability-reports/rel_t${t}.txt" \
            >/dev/null
    done
    cmp "$ROOT/build/reliability-reports/rel_t1.txt" \
        "$ROOT/build/reliability-reports/rel_t2.txt" || {
        echo "FAIL: reliability digest differs between 1 and 2 threads"
        exit 1
    }
    cmp "$ROOT/build/reliability-reports/rel_t1.txt" \
        "$ROOT/build/reliability-reports/rel_t4.txt" || {
        echo "FAIL: reliability digest differs between 1 and 4 threads"
        exit 1
    }
    echo "    identical digests at 1, 2, and 4 threads"

    echo "=== tier-1: reliability block-failure campaign ==="
    BABOL_AUDIT=1 "$ROOT/build/examples/ssd_fio" coro \
        --rain --scrub --blockfail-at 150 \
        --reliability-out "$ROOT/build/reliability-reports/rel_blockfail.txt" \
        | tail -4

    # Negative control: the same die kill WITHOUT RAIN must lose data
    # and say so via the dedicated exit code. If this run starts
    # passing, the campaign stopped exercising anything.
    echo "=== tier-1: reliability no-RAIN control (must lose data) ==="
    local rc=0
    "$ROOT/build/examples/ssd_fio" coro --scrub --diefail-at 200 \
        >/dev/null || rc=$?
    if [[ "$rc" -ne 4 ]]; then
        echo "FAIL: no-RAIN die kill exited $rc, expected data-loss code 4"
        exit 1
    fi
    echo "    control lost data as expected (exit 4)"
}

# Bench-regression guard: the event kernel's throughput must stay
# within 15% of the committed baseline. One retry absorbs machine
# noise; the comparison uses sed/awk only, no extra tooling.
check_bench_regression() {
    local baseline="$ROOT/BENCH_event_kernel.json"
    local fresh="$ROOT/build/bench_guard.json"
    "$ROOT/build/bench/micro_event_kernel" --quick --out "$fresh" \
        >/dev/null
    local want got
    want="$(sed -n 's/.*"kernel_events_per_sec": \([0-9]*\).*/\1/p' \
        "$baseline")"
    got="$(sed -n 's/.*"kernel_events_per_sec": \([0-9]*\).*/\1/p' \
        "$fresh")"
    echo "    kernel events/s: baseline ${want}, this run ${got}"
    awk -v w="$want" -v g="$got" \
        'BEGIN { exit !(g >= w * 0.85 && g <= w * 1.15) }'
}

stage_guard() {
    ensure_plain_build
    echo "=== tier-1: bench-regression guard (±15%) ==="
    if ! check_bench_regression; then
        echo "    outside ±15%; retrying once to rule out noise"
        check_bench_regression || {
            echo "FAIL: event-kernel throughput drifted more than 15%" \
                 "from BENCH_event_kernel.json"
            exit 1
        }
    fi

    # Disabled-overhead guard: with the obs hot path (or the scrubber's
    # host-path bookkeeping) compiled in but switched off, the event
    # kernel must stay within 3% of its plain throughput. One retry
    # absorbs machine noise.
    echo "=== tier-1: disabled-overhead guard (obs + scrub) ==="
    check_overhead() {
        "$ROOT/build/bench/micro_event_kernel" --quick \
            --out "$ROOT/build/bench_obs_guard.json" >/dev/null
        local pct spct
        pct="$(sed -n \
            's/.*"obs_disabled_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
            "$ROOT/build/bench_obs_guard.json")"
        spct="$(sed -n \
            's/.*"scrub_disabled_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
            "$ROOT/build/bench_obs_guard.json")"
        echo "    obs-disabled overhead: ${pct}%," \
             "scrub-disabled overhead: ${spct}%"
        awk -v p="$pct" -v s="$spct" \
            'BEGIN { exit !(p <= 3.0 && s <= 3.0) }'
    }
    if ! check_overhead; then
        echo "    above 3%; retrying once to rule out noise"
        check_overhead || {
            echo "FAIL: disabled tracing/scrub costs more than 3% throughput"
            exit 1
        }
    fi

    # Sharded determinism smoke: the fig12 workload on the sharded
    # engine is a pure function of the model, so the printed table must
    # be byte-identical no matter how many worker threads run it.
    echo "=== tier-1: sharded determinism smoke (--threads 1/2/4) ==="
    local t
    for t in 1 2 4; do
        "$ROOT/build/bench/fig12_end_to_end" --quick --threads "$t" \
            > "$ROOT/build/fig12_t${t}.txt"
    done
    diff "$ROOT/build/fig12_t1.txt" "$ROOT/build/fig12_t2.txt" || {
        echo "FAIL: sharded fig12 output differs between 1 and 2 threads"
        exit 1
    }
    diff "$ROOT/build/fig12_t1.txt" "$ROOT/build/fig12_t4.txt" || {
        echo "FAIL: sharded fig12 output differs between 1 and 4 threads"
        exit 1
    }
    echo "    identical tables at 1, 2, and 4 threads"

    # Power determinism smoke: per-rail energy is integer femtojoules
    # (order-independent sums), so the power summary must be
    # byte-identical no matter how many worker threads ran the device.
    echo "=== tier-1: power determinism smoke (--threads 1/4) ==="
    "$ROOT/build/examples/ssd_fio" coro --power-out "$ROOT/build/power_t1.json" \
        --threads 1 >/dev/null
    "$ROOT/build/examples/ssd_fio" coro --power-out "$ROOT/build/power_t4.json" \
        --threads 4 >/dev/null
    cmp "$ROOT/build/power_t1.json" "$ROOT/build/power_t4.json" || {
        echo "FAIL: power summary differs between 1 and 4 threads"
        exit 1
    }
    echo "    identical power summaries at 1 and 4 threads"

    # Multi-tenant determinism smoke: the per-tenant SLO report is a
    # pure function of the model too — two runs at different thread
    # counts must produce byte-identical JSON.
    echo "=== tier-1: multi-tenant SLO determinism smoke ==="
    "$ROOT/build/examples/ssd_fio" coro --qpairs 4 --tenants 50 \
        --slo-out "$ROOT/build/slo_t1.json" --threads 1 >/dev/null
    "$ROOT/build/examples/ssd_fio" coro --qpairs 4 --tenants 50 \
        --slo-out "$ROOT/build/slo_t4.json" --threads 4 >/dev/null
    cmp "$ROOT/build/slo_t1.json" "$ROOT/build/slo_t4.json" || {
        echo "FAIL: tenant SLO report differs between 1 and 4 threads"
        exit 1
    }
    echo "    identical SLO JSON at 1 and 4 threads (50 tenants)"
}

case "$MODE" in
  --plain-only) stage_plain ;;
  --asan-only)  stage_asan ;;
  --tsan-only)  stage_tsan ;;
  --audit-only) stage_audit ;;
  --crash-only) stage_crash ;;
  --guard-only) stage_guard ;;
  --reliability-only) stage_reliability ;;
  all)
    stage_plain
    stage_audit
    stage_crash
    stage_reliability
    stage_asan
    stage_tsan
    stage_guard
    ;;
  *)
    echo "usage: scripts/ci.sh" \
         "[--plain-only|--asan-only|--tsan-only|--audit-only|--crash-only|--guard-only|--reliability-only]" \
         >&2
    exit 2
    ;;
esac

echo "=== tier-1: OK ==="
