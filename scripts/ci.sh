#!/usr/bin/env bash
# Tier-1 gate: build and run the test suite, plain and sanitized, with
# the ONFI conformance audit and the performance guards.
#
# The sanitized pass (ASan + UBSan via -DBABOL_SANITIZE=ON) exists
# chiefly for the event kernel's pool / free-list / intrusive-list code,
# where a stale index or double release would otherwise corrupt silently.
#
# Stages (all run when no flag is given; CI runs them as separate jobs):
#   --plain-only   configure/build/ctest, default flags
#   --asan-only    configure/build/ctest with ASan + UBSan
#   --audit-only   BABOL_AUDIT=1 sanitizer sweep + fault campaigns on
#                  every controller flavour (requires a prior plain
#                  build; runs one if build/ is missing)
#   --guard-only   bench-regression + tracing-overhead guards (same
#                  build requirement)
#
# Usage: scripts/ci.sh [--plain-only|--asan-only|--audit-only|--guard-only]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S "$ROOT" "$@"
    cmake --build "$dir" -j"$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

ensure_plain_build() {
    if [[ ! -x "$ROOT/build/examples/ssd_fio" ]]; then
        cmake -B "$ROOT/build" -S "$ROOT"
        cmake --build "$ROOT/build" -j"$JOBS"
    fi
}

stage_plain() {
    echo "=== tier-1: plain ==="
    run_suite "$ROOT/build"
}

stage_asan() {
    echo "=== tier-1: ASan + UBSan ==="
    run_suite "$ROOT/build-asan" -DBABOL_SANITIZE=ON
}

# ONFI conformance audit: the whole suite and the figure benches run
# with the online auditor armed as a sanitizer (BABOL_AUDIT=1 panics on
# the first unsuppressed diagnostic), plus collector-mode (--audit)
# passes whose exit status covers the end-of-run conservation checks —
# including a full fault campaign on every controller flavour, which
# must inject, recover, and still audit clean.
stage_audit() {
    ensure_plain_build
    echo "=== tier-1: ONFI conformance audit (BABOL_AUDIT=1) ==="
    BABOL_AUDIT=1 ctest --test-dir "$ROOT/build" --output-on-failure \
        -j"$JOBS"
    BABOL_AUDIT=1 "$ROOT/build/bench/fig10_sw_overhead" --quick >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig11_polling_breakdown" >/dev/null
    BABOL_AUDIT=1 "$ROOT/build/bench/fig12_end_to_end" --quick >/dev/null
    "$ROOT/build/examples/ssd_fio" coro --audit | tail -3

    echo "=== tier-1: fault campaigns (every flavour, audit-clean) ==="
    mkdir -p "$ROOT/build/audit-reports"
    local flavor
    for flavor in coro rtos hw; do
        echo "--- $flavor ---"
        "$ROOT/build/examples/ssd_fio" "$flavor" \
            --faults "$ROOT/examples/fault_plan.txt" \
            --audit="$ROOT/build/audit-reports/fault_${flavor}.txt" \
            | tail -4
    done
}

# Bench-regression guard: the event kernel's throughput must stay
# within 15% of the committed baseline. One retry absorbs machine
# noise; the comparison uses sed/awk only, no extra tooling.
check_bench_regression() {
    local baseline="$ROOT/BENCH_event_kernel.json"
    local fresh="$ROOT/build/bench_guard.json"
    "$ROOT/build/bench/micro_event_kernel" --quick --out "$fresh" \
        >/dev/null
    local want got
    want="$(sed -n 's/.*"kernel_events_per_sec": \([0-9]*\).*/\1/p' \
        "$baseline")"
    got="$(sed -n 's/.*"kernel_events_per_sec": \([0-9]*\).*/\1/p' \
        "$fresh")"
    echo "    kernel events/s: baseline ${want}, this run ${got}"
    awk -v w="$want" -v g="$got" \
        'BEGIN { exit !(g >= w * 0.85 && g <= w * 1.15) }'
}

stage_guard() {
    ensure_plain_build
    echo "=== tier-1: bench-regression guard (±15%) ==="
    if ! check_bench_regression; then
        echo "    outside ±15%; retrying once to rule out noise"
        check_bench_regression || {
            echo "FAIL: event-kernel throughput drifted more than 15%" \
                 "from BENCH_event_kernel.json"
            exit 1
        }
    fi

    # Tracing-overhead guard: with the obs hot path compiled in but
    # recording disabled, the event kernel must stay within 3% of its
    # plain throughput. One retry absorbs machine noise.
    echo "=== tier-1: tracing-overhead guard ==="
    check_overhead() {
        "$ROOT/build/bench/micro_event_kernel" --quick \
            --out "$ROOT/build/bench_obs_guard.json" >/dev/null
        local pct
        pct="$(sed -n \
            's/.*"obs_disabled_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
            "$ROOT/build/bench_obs_guard.json")"
        echo "    obs-disabled overhead: ${pct}%"
        awk -v p="$pct" 'BEGIN { exit !(p <= 3.0) }'
    }
    if ! check_overhead; then
        echo "    above 3%; retrying once to rule out noise"
        check_overhead || {
            echo "FAIL: disabled tracing costs more than 3% throughput"
            exit 1
        }
    fi
}

case "$MODE" in
  --plain-only) stage_plain ;;
  --asan-only)  stage_asan ;;
  --audit-only) stage_audit ;;
  --guard-only) stage_guard ;;
  all)
    stage_plain
    stage_audit
    stage_asan
    stage_guard
    ;;
  *)
    echo "usage: scripts/ci.sh" \
         "[--plain-only|--asan-only|--audit-only|--guard-only]" >&2
    exit 2
    ;;
esac

echo "=== tier-1: OK ==="
