#!/usr/bin/env bash
# Tier-1 gate: build and run the test suite, plain and sanitized.
#
# The sanitized pass (ASan + UBSan via -DBABOL_SANITIZE=ON) exists
# chiefly for the event kernel's pool / free-list / intrusive-list code,
# where a stale index or double release would otherwise corrupt silently.
#
# Usage: scripts/ci.sh [--plain-only|--asan-only]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S "$ROOT" "$@"
    cmake --build "$dir" -j"$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
}

if [[ "$MODE" != "--asan-only" ]]; then
    echo "=== tier-1: plain ==="
    run_suite "$ROOT/build"
fi

if [[ "$MODE" != "--plain-only" ]]; then
    echo "=== tier-1: ASan + UBSan ==="
    run_suite "$ROOT/build-asan" -DBABOL_SANITIZE=ON
fi

echo "=== tier-1: OK ==="
